// Certified execution: the in-model certification pass and its sequential
// cross-validator. The two implementations share no code, so every test
// that passes both is evidence the certificate means what it says.
#include "mpc/certify.hpp"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/ruling_set.hpp"
#include "graph/generators.hpp"
#include "graph/verify.hpp"

namespace rsets {
namespace {

mpc::MpcConfig config_for() {
  mpc::MpcConfig cfg;
  cfg.num_machines = 4;
  cfg.memory_words = 1 << 22;
  cfg.seed = 3;
  return cfg;
}

TEST(Certify, CertifiesEveryMpcAlgorithmOutput) {
  const Graph g = gen::gnp(300, 0.03, 5);
  for (const AlgorithmInfo& info : algorithm_registry()) {
    if (info.model != Model::kMpc) continue;
    RulingSetOptions options;
    options.algorithm = info.algorithm;
    options.beta = info.min_beta;
    options.mpc = config_for();
    const RulingSetResult result = compute_ruling_set(g, options);

    const RulingSetCertificate cert = mpc::certify_ruling_set(
        g, result.ruling_set, result.beta, options.mpc);
    EXPECT_TRUE(cert.valid()) << info.name << ": " << cert.to_string();
    EXPECT_TRUE(cross_validate_certificate(g, result.ruling_set, cert))
        << info.name;
    EXPECT_GT(cert.rounds, 0u) << info.name;
  }
}

TEST(Certify, CertifiesGreedySequentialOutput) {
  const Graph g = gen::power_law(400, 2.5, 8.0, 7);
  RulingSetOptions options;
  options.algorithm = Algorithm::kGreedySequential;
  options.beta = 1;
  const RulingSetResult result = compute_ruling_set(g, options);
  const RulingSetCertificate cert =
      mpc::certify_ruling_set(g, result.ruling_set, 1, config_for());
  EXPECT_TRUE(cert.valid()) << cert.to_string();
  EXPECT_TRUE(cross_validate_certificate(g, result.ruling_set, cert));
}

TEST(Certify, MutatedResultIsRejected) {
  const Graph g = gen::gnp(300, 0.03, 5);
  RulingSetOptions options;
  options.algorithm = Algorithm::kLubyMpc;
  options.beta = 1;
  options.mpc = config_for();
  std::vector<VertexId> set = compute_ruling_set(g, options).ruling_set;
  ASSERT_FALSE(set.empty());

  // Add a neighbor of a member: independence breaks, and the certifier
  // must count the conflicting edge. The certificate still cross-validates
  // because it honestly describes the bad set.
  VertexId intruder = set[0];
  for (const VertexId u : g.neighbors(set[0])) {
    intruder = u;
    break;
  }
  ASSERT_NE(intruder, set[0]);
  set.push_back(intruder);

  const RulingSetCertificate cert =
      mpc::certify_ruling_set(g, set, 1, config_for());
  EXPECT_FALSE(cert.valid()) << cert.to_string();
  EXPECT_GT(cert.conflict_edges, 0u);
  EXPECT_TRUE(cross_validate_certificate(g, set, cert));
}

TEST(Certify, UncoveredVerticesAreCounted) {
  const Graph g = gen::path(8);  // 0-1-...-7
  const std::vector<VertexId> set = {0};
  const RulingSetCertificate cert =
      mpc::certify_ruling_set(g, set, 1, config_for());
  // Only 0 and 1 are within one hop of the set; 2..7 are uncovered.
  EXPECT_FALSE(cert.valid());
  EXPECT_EQ(cert.conflict_edges, 0u);
  EXPECT_EQ(cert.uncovered, 6u);
  EXPECT_EQ(cert.radius, 1u);
  EXPECT_TRUE(cross_validate_certificate(g, set, cert));
}

TEST(Certify, MalformedEntriesAreScreened) {
  const Graph g = gen::path(5);
  const std::vector<VertexId> set = {0, 0, 99, 2, 4};
  const RulingSetCertificate cert =
      mpc::certify_ruling_set(g, set, 1, config_for());
  EXPECT_EQ(cert.malformed, 2u);  // duplicate 0 and out-of-range 99
  EXPECT_FALSE(cert.valid());
  // The survivors {0, 2, 4} dominate the path at radius 1.
  EXPECT_EQ(cert.uncovered, 0u);
  EXPECT_TRUE(cross_validate_certificate(g, set, cert));
}

TEST(Certify, ForgedCertificateFailsCrossValidation) {
  const Graph g = gen::cycle(12);
  const std::vector<VertexId> set = {0, 3, 6, 9};
  RulingSetCertificate cert =
      mpc::certify_ruling_set(g, set, 2, config_for());
  ASSERT_TRUE(cert.valid());
  ASSERT_TRUE(cross_validate_certificate(g, set, cert));

  RulingSetCertificate forged = cert;
  forged.uncovered = 0;
  forged.level_counts[1] += 1;  // inflate coverage
  EXPECT_FALSE(cross_validate_certificate(g, set, forged));

  forged = cert;
  forged.radius += 1;
  EXPECT_FALSE(cross_validate_certificate(g, set, forged));

  forged = cert;
  forged.set_size += 1;
  EXPECT_FALSE(cross_validate_certificate(g, set, forged));
}

TEST(Certify, DisconnectedGraphNeedsCoverInEachComponent) {
  // Two disjoint triangles; the set only touches the first.
  const Graph g = Graph::from_edges(
      6, std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  const RulingSetCertificate partial =
      mpc::certify_ruling_set(g, std::vector<VertexId>{0}, 1, config_for());
  EXPECT_FALSE(partial.valid());
  EXPECT_EQ(partial.uncovered, 3u);
  EXPECT_TRUE(
      cross_validate_certificate(g, std::vector<VertexId>{0}, partial));

  const std::vector<VertexId> full = {0, 3};
  const RulingSetCertificate ok =
      mpc::certify_ruling_set(g, full, 1, config_for());
  EXPECT_TRUE(ok.valid()) << ok.to_string();
  EXPECT_TRUE(cross_validate_certificate(g, full, ok));
}

TEST(Certify, BetaLargerThanDiameterTerminatesEarly) {
  const Graph g = gen::complete(10);  // diameter 1
  const std::vector<VertexId> set = {4};
  const RulingSetCertificate cert =
      mpc::certify_ruling_set(g, set, 5, config_for());
  EXPECT_TRUE(cert.valid()) << cert.to_string();
  EXPECT_EQ(cert.radius, 1u);
  ASSERT_EQ(cert.level_counts.size(), 6u);
  EXPECT_EQ(cert.level_counts[1], 9u);
  for (std::size_t d = 2; d < cert.level_counts.size(); ++d) {
    EXPECT_EQ(cert.level_counts[d], 0u);
  }
  EXPECT_TRUE(cross_validate_certificate(g, set, cert));
}

TEST(Certify, BetaZeroStillChecksIndependence) {
  // With beta == 0 the set must be the whole vertex set AND independent.
  const Graph g = Graph::from_edges(3, std::vector<Edge>{{0, 1}});
  const RulingSetCertificate bad = mpc::certify_ruling_set(
      g, std::vector<VertexId>{0, 1, 2}, 0, config_for());
  EXPECT_FALSE(bad.valid());
  EXPECT_EQ(bad.conflict_edges, 1u);
  EXPECT_TRUE(cross_validate_certificate(
      g, std::vector<VertexId>{0, 1, 2}, bad));

  const Graph edgeless = Graph::from_edges(4, {});
  const RulingSetCertificate good = mpc::certify_ruling_set(
      edgeless, std::vector<VertexId>{0, 1, 2, 3}, 0, config_for());
  EXPECT_TRUE(good.valid()) << good.to_string();
  EXPECT_TRUE(cross_validate_certificate(
      edgeless, std::vector<VertexId>{0, 1, 2, 3}, good));
}

TEST(Certify, EmptyGraphAndEmptySet) {
  const Graph g = Graph::from_edges(0, {});
  const RulingSetCertificate cert =
      mpc::certify_ruling_set(g, std::vector<VertexId>{}, 2, config_for());
  EXPECT_TRUE(cert.valid()) << cert.to_string();
  EXPECT_TRUE(cross_validate_certificate(g, std::vector<VertexId>{}, cert));
}

TEST(Certify, UndersizedMemoryDegradesInsteadOfAborting) {
  const Graph g = gen::gnp(300, 0.03, 5);
  RulingSetOptions options;
  options.algorithm = Algorithm::kLubyMpc;
  options.beta = 1;
  options.mpc = config_for();
  const RulingSetResult result = compute_ruling_set(g, options);

  mpc::MpcConfig tiny = config_for();
  tiny.memory_words = 1 << 8;
  tiny.budget_policy = mpc::BudgetPolicy::kStrict;  // certify overrides this
  const RulingSetCertificate cert =
      mpc::certify_ruling_set(g, result.ruling_set, 1, tiny);
  EXPECT_TRUE(cert.valid()) << cert.to_string();
  EXPECT_TRUE(cross_validate_certificate(g, result.ruling_set, cert));
}

}  // namespace
}  // namespace rsets
