// Chaos tests for the fault-injection subsystem (src/mpc/fault/): injected
// crashes, stragglers, and transport faults must never change any
// algorithm's result — only the cost ledger — and the injected sequence
// must itself be deterministic (same config, same faults, at any thread
// count).
#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/ruling_set.hpp"
#include "graph/generators.hpp"
#include "graph/verify.hpp"
#include "mpc/fault/injector.hpp"
#include "mpc/trace.hpp"
#include "util/error.hpp"

namespace rsets {
namespace {

struct Trial {
  RulingSetResult result;
  std::vector<mpc::RoundTrace> traces;
};

Trial run(const Graph& g, Algorithm algorithm, std::uint32_t beta,
          const mpc::FaultConfig& faults, std::uint64_t checkpoint_every = 0,
          unsigned num_threads = 1) {
  Trial trial;
  RulingSetOptions options;
  options.algorithm = algorithm;
  options.beta = beta;
  options.mpc.num_machines = 8;
  options.mpc.num_threads = num_threads;
  options.mpc.faults = faults;
  options.mpc.checkpoint_every = checkpoint_every;
  options.mpc.trace_hook = [&trial](const mpc::RoundTrace& trace) {
    trial.traces.push_back(trace);
  };
  trial.result = compute_ruling_set(g, options);
  return trial;
}

std::vector<mpc::FaultEvent> all_events(const Trial& trial) {
  std::vector<mpc::FaultEvent> events;
  for (const mpc::RoundTrace& t : trial.traces) {
    events.insert(events.end(), t.faults.begin(), t.faults.end());
  }
  return events;
}

std::uint64_t count_kind(const Trial& trial, mpc::FaultKind kind) {
  std::uint64_t n = 0;
  for (const mpc::FaultEvent& e : all_events(trial)) {
    if (e.kind == kind) ++n;
  }
  return n;
}

struct Case {
  Algorithm algorithm;
  std::uint32_t beta;
};

class FaultInjection : public ::testing::TestWithParam<Case> {
 protected:
  const Graph g_ = gen::gnp(240, 0.035, 17);
};

// Enabling the subsystem without any fault knob must be a strict no-op:
// same set, same metrics, no events.
TEST_P(FaultInjection, EnabledButQuietIsIdentical) {
  const Case c = GetParam();
  const Trial base = run(g_, c.algorithm, c.beta, {});
  mpc::FaultConfig quiet;
  quiet.enabled = true;
  const Trial faulty = run(g_, c.algorithm, c.beta, quiet);
  EXPECT_EQ(base.result.ruling_set, faulty.result.ruling_set);
  EXPECT_EQ(base.result.metrics.rounds, faulty.result.metrics.rounds);
  EXPECT_EQ(base.result.metrics.messages, faulty.result.metrics.messages);
  EXPECT_EQ(base.result.metrics.total_words,
            faulty.result.metrics.total_words);
  EXPECT_EQ(base.result.metrics.random_words,
            faulty.result.metrics.random_words);
  EXPECT_EQ(faulty.result.metrics.faults_injected, 0u);
  EXPECT_TRUE(all_events(faulty).empty());
}

// A mid-run crash restores from the last checkpoint: identical output,
// rounds inflated by exactly the charged recovery.
TEST_P(FaultInjection, CrashPreservesResultAndChargesRecovery) {
  const Case c = GetParam();
  const Trial base = run(g_, c.algorithm, c.beta, {});
  ASSERT_GT(base.result.metrics.rounds, 5u);

  mpc::FaultConfig faults;
  faults.enabled = true;
  faults.schedule.push_back({mpc::FaultKind::kCrash, 5, 3});
  const Trial faulty = run(g_, c.algorithm, c.beta, faults,
                           /*checkpoint_every=*/2);

  EXPECT_EQ(base.result.ruling_set, faulty.result.ruling_set);
  EXPECT_EQ(base.result.phases, faulty.result.phases);
  EXPECT_EQ(base.result.metrics.messages, faulty.result.metrics.messages);
  EXPECT_EQ(base.result.metrics.total_words,
            faulty.result.metrics.total_words);
  // Crash at round 5, checkpoints every 2 rounds -> last durable checkpoint
  // at round 4, so exactly one recovery round is charged.
  EXPECT_EQ(faulty.result.metrics.recovery_rounds, 1u);
  EXPECT_EQ(faulty.result.metrics.rounds, base.result.metrics.rounds + 1);
  EXPECT_EQ(count_kind(faulty, mpc::FaultKind::kCrash), 1u);
  EXPECT_GE(faulty.result.metrics.checkpoints, 2u);
  for (const mpc::FaultEvent& e : all_events(faulty)) {
    if (e.kind != mpc::FaultKind::kCrash) continue;
    EXPECT_EQ(e.round, 5u);
    EXPECT_EQ(e.machine, 3u);
    EXPECT_EQ(e.checkpoint, 4u);     // recovered from the round-4 checkpoint
    EXPECT_EQ(e.delay_rounds, 1u);   // 5 - 4 re-executed supersteps
  }
}

// Without any durable checkpoint, recovery re-executes from the initial
// state: the full prefix is charged.
TEST_P(FaultInjection, CrashWithoutCheckpointsChargesFullPrefix) {
  const Case c = GetParam();
  const Trial base = run(g_, c.algorithm, c.beta, {});
  mpc::FaultConfig faults;
  faults.enabled = true;
  faults.schedule.push_back({mpc::FaultKind::kCrash, 4, 0});
  const Trial faulty = run(g_, c.algorithm, c.beta, faults);
  EXPECT_EQ(base.result.ruling_set, faulty.result.ruling_set);
  EXPECT_EQ(faulty.result.metrics.recovery_rounds, 4u);
  EXPECT_EQ(faulty.result.metrics.rounds, base.result.metrics.rounds + 4);
  EXPECT_EQ(faulty.result.metrics.checkpoints, 0u);
}

// A straggler stalls the whole barrier for its delay.
TEST_P(FaultInjection, StragglerChargesItsDelay) {
  const Case c = GetParam();
  const Trial base = run(g_, c.algorithm, c.beta, {});
  mpc::FaultConfig faults;
  faults.enabled = true;
  faults.schedule.push_back({mpc::FaultKind::kStraggler, 3, 6, 5});
  const Trial faulty = run(g_, c.algorithm, c.beta, faults);
  EXPECT_EQ(base.result.ruling_set, faulty.result.ruling_set);
  EXPECT_EQ(faulty.result.metrics.rounds, base.result.metrics.rounds + 5);
  EXPECT_EQ(faulty.result.metrics.recovery_rounds, 0u);
  EXPECT_EQ(faulty.result.metrics.faults_injected, 1u);
}

// Transport faults charge retransmissions into the ledger but deliver the
// same inbox contents, so results are unchanged and the per-phase trace
// counters still sum to the metrics totals.
TEST_P(FaultInjection, TransportFaultsChargeWordsOnly) {
  const Case c = GetParam();
  const Trial base = run(g_, c.algorithm, c.beta, {});
  mpc::FaultConfig faults;
  faults.enabled = true;
  faults.drop_prob = 0.2;
  faults.duplicate_prob = 0.2;
  const Trial faulty = run(g_, c.algorithm, c.beta, faults);

  EXPECT_EQ(base.result.ruling_set, faulty.result.ruling_set);
  EXPECT_EQ(base.result.metrics.rounds, faulty.result.metrics.rounds);
  EXPECT_GT(faulty.result.metrics.total_words,
            base.result.metrics.total_words);
  EXPECT_GT(faulty.result.metrics.faults_injected, 0u);

  std::uint64_t messages = 0;
  std::uint64_t words_sent = 0;
  for (const mpc::RoundTrace& t : faulty.traces) {
    messages += t.messages;
    words_sent += t.words_sent;
  }
  EXPECT_EQ(messages, faulty.result.metrics.messages);
  EXPECT_EQ(words_sent, faulty.result.metrics.total_words);
}

// The injected fault sequence is a pure function of the config: re-running
// reproduces it event for event, at any thread count.
TEST_P(FaultInjection, InjectionIsDeterministicAcrossThreads) {
  const Case c = GetParam();
  mpc::FaultConfig faults;
  faults.enabled = true;
  faults.seed = 42;
  faults.crash_prob = 0.01;
  faults.straggler_prob = 0.03;
  faults.drop_prob = 0.05;
  faults.duplicate_prob = 0.05;
  const Trial base = run(g_, c.algorithm, c.beta, faults,
                         /*checkpoint_every=*/3, /*num_threads=*/1);
  for (unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    const Trial other = run(g_, c.algorithm, c.beta, faults,
                            /*checkpoint_every=*/3, threads);
    EXPECT_EQ(base.result.ruling_set, other.result.ruling_set);
    EXPECT_EQ(base.result.metrics.rounds, other.result.metrics.rounds);
    EXPECT_EQ(base.result.metrics.faults_injected,
              other.result.metrics.faults_injected);
    EXPECT_EQ(base.result.metrics.recovery_rounds,
              other.result.metrics.recovery_rounds);
    EXPECT_EQ(base.result.metrics.checkpoints,
              other.result.metrics.checkpoints);
    EXPECT_EQ(all_events(base), all_events(other));
  }
  // A different injector seed draws a different fault sequence (while the
  // algorithm result still never changes).
  mpc::FaultConfig reseeded = faults;
  reseeded.seed = 43;
  const Trial other_seed = run(g_, c.algorithm, c.beta, reseeded,
                               /*checkpoint_every=*/3);
  EXPECT_EQ(base.result.ruling_set, other_seed.result.ruling_set);
  EXPECT_NE(all_events(base), all_events(other_seed));
}

// Injecting faults must never consume algorithm randomness: the injector
// draws from its own stream and random_words stays what the algorithm used.
TEST_P(FaultInjection, InjectorDoesNotPerturbAlgorithmRandomness) {
  const Case c = GetParam();
  const Trial base = run(g_, c.algorithm, c.beta, {});
  mpc::FaultConfig faults;
  faults.enabled = true;
  faults.straggler_prob = 0.1;
  faults.drop_prob = 0.1;
  const Trial faulty = run(g_, c.algorithm, c.beta, faults);
  EXPECT_EQ(base.result.metrics.random_words,
            faulty.result.metrics.random_words);
}

INSTANTIATE_TEST_SUITE_P(
    AllMpcAlgorithms, FaultInjection,
    ::testing::Values(Case{Algorithm::kLubyMpc, 1},
                      Case{Algorithm::kDetLubyMpc, 1},
                      Case{Algorithm::kSampleGatherMpc, 2},
                      Case{Algorithm::kDetRulingMpc, 2}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return algorithm_name(info.param.algorithm);
    });

TEST(FaultInjectorValidation, RejectsBadConfigs) {
  mpc::FaultConfig bad;
  bad.enabled = true;
  bad.crash_prob = 1.5;
  EXPECT_THROW(mpc::FaultInjector(bad, 4), std::invalid_argument);

  bad = {};
  bad.enabled = true;
  bad.max_straggler_rounds = 0;
  EXPECT_THROW(mpc::FaultInjector(bad, 4), std::invalid_argument);

  bad = {};
  bad.enabled = true;
  bad.schedule.push_back({mpc::FaultKind::kCrash, 3, 9});  // machine 9 of 4
  EXPECT_THROW(mpc::FaultInjector(bad, 4), std::invalid_argument);

  bad = {};
  bad.enabled = true;
  bad.schedule.push_back({mpc::FaultKind::kCheckpoint, 3, 0});
  EXPECT_THROW(mpc::FaultInjector(bad, 4), std::invalid_argument);

  bad = {};
  bad.enabled = true;
  bad.schedule.push_back({mpc::FaultKind::kDrop, 3, 0});
  EXPECT_THROW(mpc::FaultInjector(bad, 4), std::invalid_argument);
}

TEST(FaultSpec, ParsesTheCliGrammar) {
  const mpc::FaultConfig empty = mpc::parse_fault_spec("");
  EXPECT_FALSE(empty.enabled);

  const mpc::FaultConfig config = mpc::parse_fault_spec(
      "crash@5:2,straggler@7:1:3,crash~0.25,straggler~0.5,drop~0.01,"
      "dup~0.005,seed=9");
  EXPECT_TRUE(config.enabled);
  EXPECT_EQ(config.seed, 9u);
  EXPECT_DOUBLE_EQ(config.crash_prob, 0.25);
  EXPECT_DOUBLE_EQ(config.straggler_prob, 0.5);
  EXPECT_DOUBLE_EQ(config.drop_prob, 0.01);
  EXPECT_DOUBLE_EQ(config.duplicate_prob, 0.005);
  ASSERT_EQ(config.schedule.size(), 2u);
  EXPECT_EQ(config.schedule[0].kind, mpc::FaultKind::kCrash);
  EXPECT_EQ(config.schedule[0].round, 5u);
  EXPECT_EQ(config.schedule[0].machine, 2u);
  EXPECT_EQ(config.schedule[1].kind, mpc::FaultKind::kStraggler);
  EXPECT_EQ(config.schedule[1].round, 7u);
  EXPECT_EQ(config.schedule[1].machine, 1u);
  EXPECT_EQ(config.schedule[1].delay_rounds, 3u);

  // Straggler delay defaults to 1 when omitted.
  EXPECT_EQ(mpc::parse_fault_spec("straggler@4:0").schedule[0].delay_rounds,
            1u);

  // New transport kinds parse through the same grammar.
  const mpc::FaultConfig integrity =
      mpc::parse_fault_spec("corrupt~0.02,reorder~0.1");
  EXPECT_TRUE(integrity.enabled);
  EXPECT_DOUBLE_EQ(integrity.corrupt_prob, 0.02);
  EXPECT_DOUBLE_EQ(integrity.reorder_prob, 0.1);

  // Malformed and unknown tokens surface as structured usage errors naming
  // the 1-based token position — never as silently-ignored fault kinds.
  EXPECT_THROW(mpc::parse_fault_spec("explode@3:1"), Error);
  EXPECT_THROW(mpc::parse_fault_spec("crash@oops:1"), Error);
  EXPECT_THROW(mpc::parse_fault_spec("drop~1.5"), Error);
  EXPECT_THROW(mpc::parse_fault_spec("nonsense"), Error);
  EXPECT_THROW(mpc::parse_fault_spec("corrupt~nope"), Error);
  EXPECT_THROW(mpc::parse_fault_spec("bitrot~0.5"), Error);
  try {
    mpc::parse_fault_spec("crash~0.1,explode~0.5");
    FAIL() << "unknown kind must be rejected";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadFlag);
    EXPECT_NE(std::string(e.what()).find("token 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("explode"), std::string::npos);
  }
}

}  // namespace
}  // namespace rsets
