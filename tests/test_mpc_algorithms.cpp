// Tests for the MPC baselines: randomized Luby, derandomized Luby, and
// randomized sample-and-gather.
#include <gtest/gtest.h>

#include "core/det_luby.hpp"
#include "core/luby.hpp"
#include "core/sample_gather.hpp"
#include "graph/generators.hpp"
#include "graph/verify.hpp"

namespace rsets {
namespace {

mpc::MpcConfig config_for(std::uint64_t seed = 1,
                          mpc::MachineId machines = 4) {
  mpc::MpcConfig cfg;
  cfg.num_machines = machines;
  cfg.memory_words = 1 << 22;
  cfg.seed = seed;
  return cfg;
}

TEST(LubyMpc, ValidMisOnSuite) {
  for (const auto& entry : gen::standard_suite(300, 7)) {
    const auto result = luby_mis_mpc(entry.graph, config_for());
    EXPECT_TRUE(is_maximal_independent_set(entry.graph, result.ruling_set))
        << entry.name;
  }
}

TEST(LubyMpc, ConsumesRandomness) {
  const Graph g = gen::gnp(300, 0.03, 2);
  const auto result = luby_mis_mpc(g, config_for());
  EXPECT_GT(result.metrics.random_words, 0u);
}

TEST(LubyMpc, IterationsLogarithmic) {
  const Graph g = gen::gnp(3000, 0.004, 5);
  const auto result = luby_mis_mpc(g, config_for());
  EXPECT_TRUE(is_maximal_independent_set(g, result.ruling_set));
  EXPECT_LE(result.phases, 40u);
}

TEST(LubyMpc, SeedsChangeOutputButNotValidity) {
  const Graph g = gen::power_law(400, 2.5, 8.0, 3);
  const auto a = luby_mis_mpc(g, config_for(1));
  const auto b = luby_mis_mpc(g, config_for(2));
  EXPECT_TRUE(is_maximal_independent_set(g, a.ruling_set));
  EXPECT_TRUE(is_maximal_independent_set(g, b.ruling_set));
  EXPECT_NE(a.ruling_set, b.ruling_set);  // overwhelmingly likely
}

TEST(LubyMpc, EdgeCases) {
  EXPECT_TRUE(luby_mis_mpc(Graph::from_edges(0, {}), config_for())
                  .ruling_set.empty());
  EXPECT_EQ(
      luby_mis_mpc(Graph::from_edges(5, {}), config_for()).ruling_set.size(),
      5u);
  EXPECT_EQ(luby_mis_mpc(gen::complete(25), config_for()).ruling_set.size(),
            1u);
}

TEST(DetLubyMpc, ValidMisOnSuite) {
  for (const auto& entry : gen::standard_suite(200, 11)) {
    const auto result = det_luby_mis_mpc(entry.graph, config_for());
    EXPECT_TRUE(is_maximal_independent_set(entry.graph, result.ruling_set))
        << entry.name;
  }
}

TEST(DetLubyMpc, ZeroRandomWordsAndDeterministic) {
  const Graph g = gen::gnp(250, 0.04, 13);
  const auto a = det_luby_mis_mpc(g, config_for(1, 4));
  const auto b = det_luby_mis_mpc(g, config_for(77, 3));
  EXPECT_EQ(a.metrics.random_words, 0u);
  EXPECT_EQ(a.ruling_set, b.ruling_set);
}

TEST(DetLubyMpc, MakesProgressEveryIteration) {
  const Graph g = gen::random_regular(200, 6, 17);
  const auto result = det_luby_mis_mpc(g, config_for());
  // >= 1 join per iteration is guaranteed; MIS size bounds iterations.
  EXPECT_LE(result.phases, result.ruling_set.size() + 1);
}

TEST(DetLubyMpc, EdgeCases) {
  EXPECT_TRUE(det_luby_mis_mpc(Graph::from_edges(0, {}), config_for())
                  .ruling_set.empty());
  EXPECT_EQ(det_luby_mis_mpc(gen::complete(12), config_for())
                .ruling_set.size(),
            1u);
  const auto star = det_luby_mis_mpc(gen::star(30), config_for());
  // On a star the MIS is either {hub} or all 29 leaves.
  EXPECT_TRUE(star.ruling_set.size() == 1u || star.ruling_set.size() == 29u);
}

TEST(DetLubyMpc, StarMisIsValid) {
  const Graph g = gen::star(30);
  const auto result = det_luby_mis_mpc(g, config_for());
  EXPECT_TRUE(is_maximal_independent_set(g, result.ruling_set));
}

TEST(SampleGather, ValidTwoRulingOnSuite) {
  for (const auto& entry : gen::standard_suite(300, 19)) {
    const auto result = sample_gather_2ruling(entry.graph, config_for());
    EXPECT_TRUE(is_beta_ruling_set(entry.graph, result.ruling_set, 2))
        << entry.name;
  }
}

TEST(SampleGather, UsesRandomness) {
  const Graph g = gen::gnp(2000, 0.01, 23);
  SampleGatherOptions options;
  options.gather_budget_words = 8192;  // force the sampling phases to run
  const auto result = sample_gather_2ruling(g, config_for(), options);
  EXPECT_TRUE(is_beta_ruling_set(g, result.ruling_set, 2));
  EXPECT_GT(result.metrics.random_words, 0u);
}

TEST(SampleGather, FewPhases) {
  const Graph g = gen::gnp(4000, 0.008, 29);
  const auto result = sample_gather_2ruling(g, config_for());
  EXPECT_LE(result.phases, 8u);
}

TEST(SampleGather, EdgeCases) {
  EXPECT_TRUE(sample_gather_2ruling(Graph::from_edges(0, {}), config_for())
                  .ruling_set.empty());
  EXPECT_EQ(sample_gather_2ruling(gen::complete(20), config_for())
                .ruling_set.size(),
            1u);
}

}  // namespace
}  // namespace rsets
