// Sharded streaming generation: parse errors, shard-union determinism,
// out-of-core ingest parity, sharded-vs-materialized run equivalence, and
// the cross-shard validator (green on correct sources, red on a broken one).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/ruling_set.hpp"
#include "graph/shard/shard_csr.hpp"
#include "graph/shard/sharded_source.hpp"
#include "graph/shard/validator.hpp"
#include "mpc/fault/fault.hpp"
#include "util/error.hpp"

namespace rsets::shard {
namespace {

ShardSpec graph500_spec(std::uint32_t scale = 10, std::uint32_t ef = 8) {
  ShardSpec spec;
  spec.family = ShardFamily::kGraph500;
  spec.scale = scale;
  spec.edgefactor = ef;
  spec.seed = 42;
  return spec;
}

ShardSpec rmat_spec() {
  ShardSpec spec;
  spec.family = ShardFamily::kRmat;
  spec.scale = 10;
  spec.edgefactor = 8;
  spec.a = 0.45;
  spec.b = 0.22;
  spec.c = 0.22;
  spec.seed = 7;
  return spec;
}

ShardSpec geometric_spec() {
  ShardSpec spec;
  spec.family = ShardFamily::kGeometric3d;
  spec.n = 3000;
  spec.radius = 0.05;
  spec.seed = 5;
  return spec;
}

std::vector<ShardSpec> all_family_specs() {
  return {graph500_spec(), rmat_spec(), geometric_spec()};
}

// The multiset of raw edges across all shards, sorted for comparison.
std::vector<std::pair<VertexId, VertexId>> sorted_union(
    const ShardedSource& src) {
  struct Collector : EdgeSink {
    std::vector<std::pair<VertexId, VertexId>> edges;
    void consume(std::span<const Edge> batch) override {
      for (const Edge& e : batch) edges.emplace_back(e.u, e.v);
    }
  } sink;
  for (std::uint32_t s = 0; s < src.num_shards(); ++s) {
    src.stream_shard(s, sink);
  }
  std::sort(sink.edges.begin(), sink.edges.end());
  return sink.edges;
}

// ---------------------------------------------------------------- parsing

TEST(ShardSpecParse, Graph500WithDefaults) {
  const ShardSpec spec = parse_shard_spec("graph500:scale=20", 9);
  EXPECT_EQ(spec.family, ShardFamily::kGraph500);
  EXPECT_EQ(spec.scale, 20u);
  EXPECT_EQ(spec.edgefactor, 16u);  // default
  EXPECT_EQ(spec.seed, 9u);        // default_seed applies
  EXPECT_EQ(spec.num_vertices(), VertexId{1} << 20);
}

TEST(ShardSpecParse, RmatCornerWeights) {
  const ShardSpec spec =
      parse_shard_spec("rmat:scale=12,edgefactor=4,a=0.5,b=0.2,c=0.2,seed=3");
  EXPECT_EQ(spec.family, ShardFamily::kRmat);
  EXPECT_EQ(spec.scale, 12u);
  EXPECT_EQ(spec.edgefactor, 4u);
  EXPECT_DOUBLE_EQ(spec.a, 0.5);
  EXPECT_DOUBLE_EQ(spec.b, 0.2);
  EXPECT_DOUBLE_EQ(spec.c, 0.2);
  EXPECT_EQ(spec.seed, 3u);  // explicit seed wins over default_seed
}

TEST(ShardSpecParse, Geometric3d) {
  const ShardSpec spec =
      parse_shard_spec("geometric3d:n=100000,radius=0.01");
  EXPECT_EQ(spec.family, ShardFamily::kGeometric3d);
  EXPECT_EQ(spec.n, 100000u);
  EXPECT_DOUBLE_EQ(spec.radius, 0.01);
}

TEST(ShardSpecParse, ToStringRoundTrips) {
  for (const ShardSpec& spec : all_family_specs()) {
    const std::string text = spec.to_string();
    const ShardSpec back = parse_shard_spec(text);
    EXPECT_EQ(back.to_string(), text) << text;
    EXPECT_EQ(back.family, spec.family);
    EXPECT_EQ(back.seed, spec.seed);
  }
}

// Malformed specs must carry the kBadFlag taxonomy and point at the failing
// token, matching parse_fault_spec's error reporting.
void expect_bad_flag(const std::string& text, const std::string& fragment) {
  try {
    parse_shard_spec(text);
    FAIL() << "parse_shard_spec accepted: " << text;
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadFlag) << text;
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "diagnostic for '" << text << "' was: " << e.what();
  }
}

TEST(ShardSpecParse, RejectsMalformedSpecs) {
  expect_bad_flag("", "empty");
  expect_bad_flag("klein_bottle:scale=4", "family");
  expect_bad_flag("graph500:scale=0", "token 1");
  expect_bad_flag("graph500:scale=35", "token 1");
  expect_bad_flag("graph500:scale=ten", "token 1");
  expect_bad_flag("graph500:scale=8,bogus=1", "token 2");
  expect_bad_flag("rmat:scale=8,a=0.6,b=0.3,c=0.3", "a+b+c");
  expect_bad_flag("rmat:scale=8,a=-0.1", "token 2");
  expect_bad_flag("geometric3d:n=1000", "radius");
  expect_bad_flag("geometric3d:radius=0.1", "n");
  expect_bad_flag("geometric3d:n=1000,radius=1.5", "token 2");
  // Keys from the wrong family are rejected, not silently ignored.
  expect_bad_flag("graph500:scale=8,radius=0.1", "token 2");
}

TEST(ShardSpecParse, BareKroneckerFamilyUsesDefaults) {
  // graph500/rmat have sensible defaults for every key, so the bare family
  // name is a valid spec; geometric3d has no default n/radius and is not.
  const ShardSpec spec = parse_shard_spec("graph500");
  EXPECT_EQ(spec.scale, 16u);
  EXPECT_EQ(spec.edgefactor, 16u);
}

// --------------------------------------------------- shard determinism

TEST(ShardDeterminism, UnionInvariantAcrossShardCounts) {
  for (const ShardSpec& spec : all_family_specs()) {
    const auto one = sorted_union(*make_sharded_source(spec, 1));
    const auto four = sorted_union(*make_sharded_source(spec, 4));
    const auto sixteen = sorted_union(*make_sharded_source(spec, 16));
    EXPECT_EQ(one, four) << spec.to_string();
    EXPECT_EQ(four, sixteen) << spec.to_string();
    EXPECT_FALSE(one.empty()) << spec.to_string();
  }
}

TEST(ShardDeterminism, RestreamingIsDeterministic) {
  const auto src = make_sharded_source(graph500_spec(), 4);
  EXPECT_EQ(sorted_union(*src), sorted_union(*src));
}

TEST(ShardDeterminism, SeedChangesTheUnion) {
  ShardSpec a = graph500_spec();
  ShardSpec b = graph500_spec();
  b.seed = a.seed + 1;
  EXPECT_NE(sorted_union(*make_sharded_source(a, 4)),
            sorted_union(*make_sharded_source(b, 4)));
}

TEST(ShardDeterminism, AdvertisedRawEdgesMatchesStream) {
  for (const ShardSpec& spec : {graph500_spec(), rmat_spec()}) {
    const auto src = make_sharded_source(spec, 4);
    EXPECT_EQ(src->raw_edges(), sorted_union(*src).size()) << spec.to_string();
  }
  // geometric3d is data-dependent and must advertise 0.
  EXPECT_EQ(make_sharded_source(geometric_spec(), 4)->raw_edges(), 0u);
}

// --------------------------------------------------------- CSR ingestion

void expect_csr_equals_graph(const ShardCsr& csr, const Graph& g) {
  ASSERT_EQ(csr.num_vertices(), g.num_vertices());
  EXPECT_EQ(csr.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto got = csr.neighbors(v);
    const auto want = g.neighbors(v);
    ASSERT_EQ(got.size(), want.size()) << "degree of " << v;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()))
        << "adjacency of " << v;
  }
}

TEST(ShardCsrTest, MatchesMaterializedGraphEveryFamily) {
  for (const ShardSpec& spec : all_family_specs()) {
    const auto src = make_sharded_source(spec, 4);
    const ShardCsr csr = build_shard_csr(*src);
    expect_csr_equals_graph(csr, materialize(spec));
  }
}

TEST(ShardCsrTest, SpilledBuildIsBitIdenticalToRam) {
  const auto src = make_sharded_source(graph500_spec(), 4);
  const ShardCsr ram = build_shard_csr(*src);
  IngestOptions spill;
  spill.spill_dir = ::testing::TempDir();
  spill.evict_stride_edges = 1024;  // exercise mid-build eviction
  const ShardCsr spilled = build_shard_csr(*src, spill);
  EXPECT_FALSE(ram.spilled());
  EXPECT_TRUE(spilled.spilled());
  ASSERT_EQ(spilled.num_vertices(), ram.num_vertices());
  EXPECT_EQ(spilled.num_edges(), ram.num_edges());
  for (VertexId v = 0; v < ram.num_vertices(); ++v) {
    const auto a = ram.neighbors(v);
    const auto b = spilled.neighbors(v);
    ASSERT_EQ(a.size(), b.size()) << v;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << v;
  }
}

TEST(ShardCsrTest, ValidateSpillDirRejectsBadPaths) {
  try {
    validate_spill_dir("/nonexistent/definitely/not/a/dir");
    FAIL() << "validate_spill_dir accepted a nonexistent path";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadFlag);
    EXPECT_NE(std::string(e.what()).find("--spill-dir"), std::string::npos);
  }
  EXPECT_NO_THROW(validate_spill_dir(::testing::TempDir()));
}

// -------------------------------------- sharded == materialized execution

void expect_metrics_equal(const mpc::MpcMetrics& a, const mpc::MpcMetrics& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.total_words, b.total_words);
  EXPECT_EQ(a.max_send_words, b.max_send_words);
  EXPECT_EQ(a.max_recv_words, b.max_recv_words);
  EXPECT_EQ(a.max_storage_words, b.max_storage_words);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.random_words, b.random_words);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.checkpoints, b.checkpoints);
  EXPECT_EQ(a.recovery_rounds, b.recovery_rounds);
  EXPECT_EQ(a.degraded_subrounds, b.degraded_subrounds);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.speculative_rounds, b.speculative_rounds);
  EXPECT_EQ(a.corrupt_detected, b.corrupt_detected);
  EXPECT_EQ(a.integrity_retries, b.integrity_retries);
  EXPECT_EQ(a.quarantined_rounds, b.quarantined_rounds);
}

// The load-bearing equivalence: same algorithm, same config, one run on the
// materialized graph and one on the sharded stream — identical output set
// AND an identical metrics ledger, entry for entry. Nothing downstream of
// the DistGraph constructor may be able to tell the ingestion paths apart.
TEST(ShardedExecution, DetRulingMatchesGlobalIngestion) {
  const ShardSpec spec = graph500_spec(10, 8);
  RulingSetOptions options;
  options.algorithm = Algorithm::kDetRulingMpc;
  options.beta = 2;
  options.mpc.num_machines = 4;

  const RulingSetResult global =
      compute_ruling_set(materialize(spec), options);
  const RulingSetResult sharded = compute_ruling_set_sharded(
      *make_sharded_source(spec, options.mpc.num_machines), {}, options);

  EXPECT_EQ(sharded.ruling_set, global.ruling_set);
  EXPECT_EQ(sharded.phases, global.phases);
  EXPECT_EQ(sharded.mark_steps, global.mark_steps);
  EXPECT_EQ(sharded.derand_chunks, global.derand_chunks);
  EXPECT_EQ(sharded.degree_trajectory, global.degree_trajectory);
  expect_metrics_equal(sharded.metrics, global.metrics);
}

TEST(ShardedExecution, MisDriversMatchGlobalIngestion) {
  const ShardSpec spec = rmat_spec();
  for (const Algorithm algorithm :
       {Algorithm::kDetLubyMpc, Algorithm::kLubyMpc}) {
    RulingSetOptions options;
    options.algorithm = algorithm;
    options.beta = 1;
    options.mpc.num_machines = 4;
    const RulingSetResult global =
        compute_ruling_set(materialize(spec), options);
    const RulingSetResult sharded = compute_ruling_set_sharded(
        *make_sharded_source(spec, options.mpc.num_machines), {}, options);
    EXPECT_EQ(sharded.ruling_set, global.ruling_set);
    expect_metrics_equal(sharded.metrics, global.metrics);
  }
}

TEST(ShardedExecution, SpilledIngestionSameResult) {
  const ShardSpec spec = graph500_spec(10, 8);
  RulingSetOptions options;
  options.algorithm = Algorithm::kDetRulingMpc;
  options.beta = 2;
  options.mpc.num_machines = 4;
  const auto src = make_sharded_source(spec, options.mpc.num_machines);
  const RulingSetResult ram = compute_ruling_set_sharded(*src, {}, options);
  IngestOptions spill;
  spill.spill_dir = ::testing::TempDir();
  const RulingSetResult spilled =
      compute_ruling_set_sharded(*src, spill, options);
  EXPECT_EQ(spilled.ruling_set, ram.ruling_set);
  expect_metrics_equal(spilled.metrics, ram.metrics);
}

TEST(ShardedExecution, UnsupportedAlgorithmThrows) {
  RulingSetOptions options;
  options.algorithm = Algorithm::kGreedySequential;
  options.beta = 2;
  EXPECT_THROW(compute_ruling_set_sharded(
                   *make_sharded_source(graph500_spec(), 4), {}, options),
               std::invalid_argument);
}

// Crash + checkpoint recovery must work when the input was sharded: the
// DistGraph participates in checkpoints identically, so a crashed machine
// recovers and the output matches the fault-free run bit for bit.
TEST(ShardedExecution, CrashRecoveryMatchesFaultFree) {
  const ShardSpec spec = graph500_spec(10, 8);
  RulingSetOptions options;
  options.algorithm = Algorithm::kDetRulingMpc;
  options.beta = 2;
  options.mpc.num_machines = 4;
  const auto src = make_sharded_source(spec, options.mpc.num_machines);
  const RulingSetResult clean = compute_ruling_set_sharded(*src, {}, options);

  options.mpc.faults = mpc::parse_fault_spec("crash@3:1,seed=11");
  options.mpc.checkpoint_every = 2;
  const RulingSetResult faulty = compute_ruling_set_sharded(*src, {}, options);

  EXPECT_EQ(faulty.ruling_set, clean.ruling_set);
  EXPECT_GE(faulty.metrics.faults_injected, 1u);
  EXPECT_GE(faulty.metrics.recovery_rounds, 1u);
  EXPECT_GE(faulty.metrics.checkpoints, 1u);
}

// ---------------------------------------------------------------- validator

TEST(ShardValidator, GreenOnEveryFamily) {
  for (const ShardSpec& spec : all_family_specs()) {
    const auto src = make_sharded_source(spec, 4);
    const ShardValidationReport report = validate_sharded_source(*src);
    EXPECT_TRUE(report.ok()) << report.to_string();
    EXPECT_TRUE(report.cross_checked) << spec.to_string();
    EXPECT_GE(report.shard_counts_probed, 2u);
  }
}

// A source that violates the contract — it silently drops the first edge of
// shard 0 — must be caught, not trusted.
class DropOneSource : public ShardedSource {
 public:
  explicit DropOneSource(std::unique_ptr<ShardedSource> inner)
      : inner_(std::move(inner)) {}

  const ShardSpec& spec() const override { return inner_->spec(); }
  VertexId num_vertices() const override { return inner_->num_vertices(); }
  std::uint32_t num_shards() const override { return inner_->num_shards(); }
  std::uint64_t raw_edges() const override { return inner_->raw_edges(); }

  void stream_shard(std::uint32_t s, EdgeSink& sink) const override {
    if (s != 0) {
      inner_->stream_shard(s, sink);
      return;
    }
    struct Dropper : EdgeSink {
      EdgeSink* out = nullptr;
      bool dropped = false;
      void consume(std::span<const Edge> batch) override {
        if (!dropped && !batch.empty()) {
          dropped = true;
          batch = batch.subspan(1);
        }
        if (!batch.empty()) out->consume(batch);
      }
    } dropper;
    dropper.out = &sink;
    inner_->stream_shard(s, dropper);
  }

 private:
  std::unique_ptr<ShardedSource> inner_;
};

TEST(ShardValidator, CatchesAContractViolation) {
  const DropOneSource broken(make_sharded_source(graph500_spec(), 4));
  const ShardValidationReport report = validate_sharded_source(broken);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.failures.empty());
}

}  // namespace
}  // namespace rsets::shard
