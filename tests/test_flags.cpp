#include "util/flags.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace rsets {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, ParsesKeyValue) {
  const Flags f = make({"--n=100", "--name=gnp"});
  EXPECT_EQ(f.get_int("n", 0), 100);
  EXPECT_EQ(f.get("name", ""), "gnp");
}

TEST(Flags, BareFlagIsTrue) {
  const Flags f = make({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_TRUE(f.has("verbose"));
}

TEST(Flags, FallbacksApply) {
  const Flags f = make({});
  EXPECT_EQ(f.get_int("n", 7), 7);
  EXPECT_EQ(f.get("x", "dflt"), "dflt");
  EXPECT_FALSE(f.get_bool("b", false));
  EXPECT_DOUBLE_EQ(f.get_double("p", 0.25), 0.25);
}

TEST(Flags, Positional) {
  const Flags f = make({"input.txt", "--n=3", "more"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "more");
}

TEST(Flags, DoubleParsing) {
  const Flags f = make({"--p=0.125"});
  EXPECT_DOUBLE_EQ(f.get_double("p", 0.0), 0.125);
}

TEST(Flags, PartialOrNonNumericValuesThrowBadFlag) {
  const Flags f = make({"--n=1x", "--p=0.5q", "--empty=", "--inf=1e999"});
  try {
    f.get_int("n", 0);
    FAIL() << "expected rsets::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadFlag);
  }
  EXPECT_THROW(f.get_double("p", 0.0), Error);
  EXPECT_THROW(f.get_int("empty", 0), Error);
  EXPECT_THROW(f.get_double("inf", 0.0), Error);
  // A bad value is only an error when the typed getter touches it.
  EXPECT_EQ(f.get("n", ""), "1x");
}

TEST(Flags, KeysLists) {
  const Flags f = make({"--a=1", "--b=2"});
  const auto keys = f.keys();
  EXPECT_EQ(keys.size(), 2u);
}

}  // namespace
}  // namespace rsets
