#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/ops.hpp"

namespace rsets {
namespace {

TEST(WattsStrogatz, NoRewiringIsRingLattice) {
  const Graph g = gen::watts_strogatz(100, 3, 0.0, 1);
  EXPECT_EQ(g.num_edges(), 300u);
  for (VertexId v = 0; v < 100; ++v) EXPECT_EQ(g.degree(v), 6u);
  // Connected ring.
  const auto comp = connected_components(g);
  for (std::uint32_t c : comp) EXPECT_EQ(c, 0u);
}

TEST(WattsStrogatz, RewiringKeepsEdgeCountClose) {
  const Graph g = gen::watts_strogatz(500, 4, 0.2, 3);
  // Rewiring can create duplicates that dedup; stays near n*k.
  EXPECT_GT(g.num_edges(), 1900u);
  EXPECT_LE(g.num_edges(), 2000u);
}

TEST(WattsStrogatz, RejectsBadArguments) {
  EXPECT_THROW(gen::watts_strogatz(10, 0, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(gen::watts_strogatz(10, 5, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(gen::watts_strogatz(10, 2, 1.5, 1), std::invalid_argument);
}

TEST(Hypercube, Structure) {
  const Graph g = gen::hypercube(5);
  EXPECT_EQ(g.num_vertices(), 32u);
  EXPECT_EQ(g.num_edges(), 32u * 5 / 2);
  for (VertexId v = 0; v < 32; ++v) EXPECT_EQ(g.degree(v), 5u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 16));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_THROW(gen::hypercube(30), std::invalid_argument);
}

TEST(BinaryTree, Structure) {
  const Graph g = gen::binary_tree(15);  // perfect depth-3 tree
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 3u);
  EXPECT_EQ(g.degree(14), 1u);
  EXPECT_EQ(degeneracy(g), 1u);
}

TEST(Lollipop, Structure) {
  const Graph g = gen::lollipop(10, 20);
  EXPECT_EQ(g.num_vertices(), 30u);
  EXPECT_EQ(g.num_edges(), 45u + 1u + 19u);
  EXPECT_EQ(g.max_degree(), 10u);  // the glue vertex: 9 clique + 1 tail
  const auto comp = connected_components(g);
  for (std::uint32_t c : comp) EXPECT_EQ(c, 0u);
}

TEST(StandardSuite, IncludesSmallWorld) {
  const auto suite = gen::standard_suite(300, 2);
  bool found = false;
  for (const auto& entry : suite) {
    if (entry.name == "small_world") found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace rsets
