// Worker threads must be invisible: for every MPC algorithm, running the
// simulator with 1, 2, or 8 threads must produce bit-identical ruling sets,
// MpcMetrics, trace counters, and record-log bytes (DESIGN.md, "Threading
// model" and §4.6 — the thread pool drives the callbacks AND the
// destination-sharded barrier). Wall-clock fields are the only thing allowed
// to differ.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/replay.hpp"
#include "core/ruling_set.hpp"
#include "graph/generators.hpp"
#include "graph/verify.hpp"
#include "mpc/trace.hpp"

namespace rsets {
namespace {

struct Trial {
  RulingSetResult result;
  std::vector<mpc::RoundTrace> traces;
};

Trial run_with_threads(const Graph& g, Algorithm algorithm, std::uint32_t beta,
                     unsigned num_threads) {
  Trial run;
  RulingSetOptions options;
  options.algorithm = algorithm;
  options.beta = beta;
  options.mpc.num_machines = 8;
  options.mpc.num_threads = num_threads;
  options.mpc.trace_hook = [&run](const mpc::RoundTrace& trace) {
    run.traces.push_back(trace);
  };
  run.result = compute_ruling_set(g, options);
  return run;
}

void expect_identical(const Trial& base, const Trial& other) {
  EXPECT_EQ(base.result.ruling_set, other.result.ruling_set);
  EXPECT_EQ(base.result.beta, other.result.beta);
  EXPECT_EQ(base.result.phases, other.result.phases);
  EXPECT_EQ(base.result.mark_steps, other.result.mark_steps);
  EXPECT_EQ(base.result.derand_chunks, other.result.derand_chunks);
  EXPECT_EQ(base.result.degree_trajectory, other.result.degree_trajectory);

  const mpc::MpcMetrics& a = base.result.metrics;
  const mpc::MpcMetrics& b = other.result.metrics;
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.total_words, b.total_words);
  EXPECT_EQ(a.max_send_words, b.max_send_words);
  EXPECT_EQ(a.max_recv_words, b.max_recv_words);
  EXPECT_EQ(a.max_storage_words, b.max_storage_words);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.random_words, b.random_words);

  ASSERT_EQ(base.traces.size(), other.traces.size());
  for (std::size_t i = 0; i < base.traces.size(); ++i) {
    const mpc::RoundTrace& s = base.traces[i];
    const mpc::RoundTrace& t = other.traces[i];
    EXPECT_EQ(s.round, t.round);
    EXPECT_EQ(s.drain, t.drain);
    EXPECT_EQ(s.messages, t.messages);
    EXPECT_EQ(s.words_sent, t.words_sent);
    EXPECT_EQ(s.words_recv, t.words_recv);
    EXPECT_EQ(s.max_recv_words, t.max_recv_words);
  }
}

struct Case {
  Algorithm algorithm;
  std::uint32_t beta;
};

class ThreadedDeterminism : public ::testing::TestWithParam<Case> {};

TEST_P(ThreadedDeterminism, ThreadCountIsInvisible) {
  const Graph g = gen::gnp(240, 0.035, 17);
  const Case c = GetParam();
  const Trial base = run_with_threads(g, c.algorithm, c.beta, 1);
  EXPECT_TRUE(is_beta_ruling_set(g, base.result.ruling_set, c.beta));
  EXPECT_FALSE(base.traces.empty());
  for (unsigned threads : {2u, 8u}) {
    const Trial threaded = run_with_threads(g, c.algorithm, c.beta, threads);
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    expect_identical(base, threaded);
  }
}

TEST_P(ThreadedDeterminism, TraceCountersSumToMetrics) {
  const Graph g = gen::gnp(240, 0.035, 17);
  const Case c = GetParam();
  const Trial run = run_with_threads(g, c.algorithm, c.beta, 2);
  std::uint64_t messages = 0;
  std::uint64_t words_sent = 0;
  std::uint64_t max_recv = 0;
  for (const mpc::RoundTrace& t : run.traces) {
    messages += t.messages;
    words_sent += t.words_sent;
    max_recv = std::max(max_recv, t.max_recv_words);
  }
  EXPECT_EQ(messages, run.result.metrics.messages);
  EXPECT_EQ(words_sent, run.result.metrics.total_words);
  EXPECT_EQ(max_recv, run.result.metrics.max_recv_words);
}

TEST_P(ThreadedDeterminism, RecordLogBytesAreThreadInvariant) {
  // The byte-level form of ThreadCountIsInvisible: the record log serializes
  // every per-phase trace counter plus the summary ledger and the set hash,
  // so comparing log bodies pins everything above at once — including under
  // integrity verification, which the parallel delivery pass performs.
  const Case c = GetParam();
  for (const bool integrity : {false, true}) {
    RunSpec spec;
    spec.algorithm = algorithm_name(c.algorithm);
    spec.beta = c.beta;
    spec.gen = "gnp";
    spec.n = 240;
    spec.avg_deg = 8.0;
    spec.seed = 17;
    spec.machines = 8;
    spec.integrity = integrity;

    spec.threads = 1;
    const std::vector<std::string> base_log = record_run(spec);
    for (const std::uint32_t threads : {4u, 0u}) {  // 0 = hw concurrency
      spec.threads = threads;
      const std::vector<std::string> log = record_run(spec);
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " integrity=" + std::to_string(integrity));
      ASSERT_EQ(log.size(), base_log.size());
      // Line 0 is the meta line, which names the thread count; every phase
      // line and the summary must match byte for byte.
      for (std::size_t i = 1; i < log.size(); ++i) {
        EXPECT_EQ(log[i], base_log[i]) << "line " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMpcAlgorithms, ThreadedDeterminism,
    ::testing::Values(Case{Algorithm::kLubyMpc, 1},
                      Case{Algorithm::kDetLubyMpc, 1},
                      Case{Algorithm::kSampleGatherMpc, 2},
                      Case{Algorithm::kDetRulingMpc, 2}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return algorithm_name(info.param.algorithm);
    });

}  // namespace
}  // namespace rsets
