#include "graph/verify.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "graph/generators.hpp"

namespace rsets {
namespace {

TEST(Verify, IndependenceBasics) {
  const Graph g = gen::path(5);  // 0-1-2-3-4
  EXPECT_TRUE(is_independent_set(g, std::vector<VertexId>{0, 2, 4}));
  EXPECT_FALSE(is_independent_set(g, std::vector<VertexId>{0, 1}));
  EXPECT_TRUE(is_independent_set(g, std::vector<VertexId>{}));
}

TEST(Verify, IndependenceRejectsDuplicatesAndOutOfRange) {
  const Graph g = gen::path(5);
  EXPECT_FALSE(is_independent_set(g, std::vector<VertexId>{2, 2}));
  EXPECT_FALSE(is_independent_set(g, std::vector<VertexId>{99}));
}

TEST(Verify, DominationRadius) {
  const Graph g = gen::path(7);
  EXPECT_EQ(domination_radius(g, std::vector<VertexId>{3}), 3u);
  EXPECT_EQ(domination_radius(g, std::vector<VertexId>{0, 6}), 3u);
  EXPECT_EQ(domination_radius(g, std::vector<VertexId>{0, 3, 6}), 1u);
}

TEST(Verify, EmptySetRadiusIsInfinite) {
  const Graph g = gen::path(3);
  EXPECT_EQ(domination_radius(g, {}),
            std::numeric_limits<std::uint32_t>::max());
}

TEST(Verify, DisconnectedNeedsMemberPerComponent) {
  const Graph g = Graph::from_edges(4, std::vector<Edge>{{0, 1}, {2, 3}});
  EXPECT_EQ(domination_radius(g, std::vector<VertexId>{0}),
            std::numeric_limits<std::uint32_t>::max());
  EXPECT_EQ(domination_radius(g, std::vector<VertexId>{0, 2}), 1u);
}

TEST(Verify, BetaRulingSet) {
  const Graph g = gen::path(7);
  EXPECT_TRUE(is_beta_ruling_set(g, std::vector<VertexId>{0, 3, 6}, 2));
  EXPECT_TRUE(is_beta_ruling_set(g, std::vector<VertexId>{3}, 3));
  EXPECT_FALSE(is_beta_ruling_set(g, std::vector<VertexId>{3}, 2));
  // Not independent -> never a ruling set.
  EXPECT_FALSE(is_beta_ruling_set(g, std::vector<VertexId>{0, 1}, 5));
}

TEST(Verify, BetaLargerThanDiameterIsStillValid) {
  const Graph g = gen::complete(8);  // diameter 1
  EXPECT_TRUE(is_beta_ruling_set(g, std::vector<VertexId>{3}, 5));
  const RulingSetReport report =
      check_ruling_set(g, std::vector<VertexId>{3}, 5);
  EXPECT_TRUE(report.valid);
  EXPECT_EQ(report.radius, 1u);
}

TEST(Verify, DisconnectedGraphReportsInfiniteRadius) {
  const Graph g = Graph::from_edges(6, std::vector<Edge>{{0, 1}, {3, 4}});
  const RulingSetReport report =
      check_ruling_set(g, std::vector<VertexId>{0}, 2);
  EXPECT_FALSE(report.valid);
  EXPECT_TRUE(report.independent);
  EXPECT_EQ(report.radius, std::numeric_limits<std::uint32_t>::max());
  // One member per component (2 and 5 are isolated) makes it valid again.
  EXPECT_TRUE(
      is_beta_ruling_set(g, std::vector<VertexId>{0, 2, 3, 5}, 2));
}

TEST(Verify, MisDetection) {
  const Graph g = gen::cycle(6);
  EXPECT_TRUE(is_maximal_independent_set(g, std::vector<VertexId>{0, 2, 4}));
  // {0} leaves vertices 2, 3, 4 undominated on C6.
  EXPECT_FALSE(is_maximal_independent_set(g, std::vector<VertexId>{0}));
}

TEST(Verify, MisOnC6PairIsMaximal) {
  const Graph g = gen::cycle(6);
  EXPECT_TRUE(is_maximal_independent_set(g, std::vector<VertexId>{0, 3}));
}

TEST(Verify, EmptyGraphEdgeCases) {
  const Graph g = Graph::from_edges(0, {});
  EXPECT_TRUE(is_beta_ruling_set(g, {}, 1));
  EXPECT_EQ(domination_radius(g, {}), 0u);
}

TEST(Verify, SingletonGraph) {
  const Graph g = Graph::from_edges(1, {});
  EXPECT_TRUE(is_beta_ruling_set(g, std::vector<VertexId>{0}, 1));
  EXPECT_FALSE(is_beta_ruling_set(g, {}, 1));  // vertex 0 undominated
}

TEST(Verify, ReportFields) {
  const Graph g = gen::path(5);
  const auto report = check_ruling_set(g, std::vector<VertexId>{0, 4}, 2);
  EXPECT_TRUE(report.valid);
  EXPECT_TRUE(report.independent);
  EXPECT_EQ(report.radius, 2u);  // vertex 2 is 2 hops from both members
  EXPECT_EQ(report.size, 2u);
  EXPECT_NE(report.to_string().find("VALID"), std::string::npos);
}

TEST(Verify, ReportFlagsInvalid) {
  const Graph g = gen::path(5);
  const auto report = check_ruling_set(g, std::vector<VertexId>{0}, 1);
  EXPECT_FALSE(report.valid);
  EXPECT_TRUE(report.independent);
  EXPECT_EQ(report.radius, 4u);
}

}  // namespace
}  // namespace rsets
