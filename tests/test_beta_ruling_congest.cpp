#include "congest/beta_ruling_congest.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "graph/verify.hpp"

namespace rsets::congest {
namespace {

TEST(BetaRulingSetCongest, ValidAcrossSuiteAndBetas) {
  for (const auto& entry : gen::standard_suite(250, 3)) {
    for (std::uint32_t beta : {1u, 2u, 3u}) {
      const auto result = beta_ruling_set_congest(entry.graph, beta);
      EXPECT_TRUE(is_beta_ruling_set(entry.graph, result.ruling_set, beta))
          << entry.name << " beta=" << beta;
    }
  }
}

TEST(BetaRulingSetCongest, MembersArePairwiseFartherThanBeta) {
  // Distance-beta Luby yields a (beta+1)-separated set: pairwise distance
  // strictly greater than beta — strictly stronger than independence.
  const Graph g = gen::grid(18, 18);
  const std::uint32_t beta = 3;
  const auto result = beta_ruling_set_congest(g, beta);
  const Graph gb = power_graph(g, static_cast<int>(beta));
  EXPECT_TRUE(is_independent_set(gb, result.ruling_set));
}

TEST(BetaRulingSetCongest, BetaOneIsMis) {
  const Graph g = gen::gnp(300, 0.02, 5);
  const auto result = beta_ruling_set_congest(g, 1);
  EXPECT_TRUE(is_maximal_independent_set(g, result.ruling_set));
}

TEST(BetaRulingSetCongest, LargerBetaSmallerSet) {
  const Graph g = gen::grid(25, 25);
  std::size_t prev = beta_ruling_set_congest(g, 1).ruling_set.size();
  for (std::uint32_t beta : {2u, 4u}) {
    const std::size_t cur = beta_ruling_set_congest(g, beta).ruling_set.size();
    EXPECT_LT(cur, prev) << "beta=" << beta;
    prev = cur;
  }
}

TEST(BetaRulingSetCongest, RoundsScaleWithBeta) {
  const Graph g = gen::cycle(400);
  const auto b1 = beta_ruling_set_congest(g, 1);
  const auto b4 = beta_ruling_set_congest(g, 4);
  // Per iteration: 2*beta + O(1) rounds; fewer iterations at larger beta,
  // but each is proportionally longer.
  EXPECT_GT(b4.congest_metrics.rounds / std::max<std::uint64_t>(b4.phases, 1),
            b1.congest_metrics.rounds / std::max<std::uint64_t>(b1.phases, 1));
}

TEST(BetaRulingSetCongest, EdgeCases) {
  EXPECT_TRUE(beta_ruling_set_congest(Graph::from_edges(0, {}), 2)
                  .ruling_set.empty());
  EXPECT_EQ(
      beta_ruling_set_congest(Graph::from_edges(4, {}), 2).ruling_set.size(),
      4u);
  EXPECT_EQ(beta_ruling_set_congest(gen::complete(15), 2).ruling_set.size(), 1u);
  EXPECT_THROW(beta_ruling_set_congest(gen::path(3), 0), std::invalid_argument);
}

TEST(BetaRulingSetCongest, DifferentSeedsBothValid) {
  const Graph g = gen::power_law(300, 2.5, 6.0, 7);
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    CongestConfig cfg;
    cfg.seed = seed;
    const auto result = beta_ruling_set_congest(g, 2, cfg);
    EXPECT_TRUE(is_beta_ruling_set(g, result.ruling_set, 2))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace rsets::congest
