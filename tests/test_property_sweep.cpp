// Property-based parameterized sweeps: every algorithm, on every graph
// family, at several sizes, must produce a verified ruling set with the
// promised beta, with model conformance and the right randomness profile.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/ruling_set.hpp"
#include "graph/generators.hpp"
#include "graph/verify.hpp"

namespace rsets {
namespace {

struct SweepCase {
  std::string family;
  VertexId n;
  Algorithm algorithm;
  std::uint32_t beta;
};

std::string case_name(const testing::TestParamInfo<SweepCase>& info) {
  return info.param.family + "_n" + std::to_string(info.param.n) + "_" +
         algorithm_name(info.param.algorithm) + "_b" +
         std::to_string(info.param.beta);
}

Graph make_graph(const std::string& family, VertexId n) {
  const std::uint64_t seed = 1234;
  if (family == "gnp") return gen::gnp(n, 6.0 / n, seed);
  if (family == "powerlaw") return gen::power_law(n, 2.5, 6.0, seed);
  if (family == "regular") return gen::random_regular(n, 8, seed);
  if (family == "tree") return gen::random_tree(n, seed);
  if (family == "grid") {
    const auto side = static_cast<std::uint32_t>(std::sqrt(n));
    return gen::grid(side, side);
  }
  if (family == "cliques") return gen::clique_blowup(n / 8, 8);
  throw std::invalid_argument("unknown family " + family);
}

class RulingSetSweep : public testing::TestWithParam<SweepCase> {};

TEST_P(RulingSetSweep, ProducesVerifiedRulingSet) {
  const SweepCase& param = GetParam();
  const Graph g = make_graph(param.family, param.n);

  RulingSetOptions options;
  options.algorithm = param.algorithm;
  options.beta = param.beta;
  options.mpc.num_machines = 4;
  options.mpc.memory_words = 1 << 22;
  options.mpc.seed = 9;

  const RulingSetResult result = compute_ruling_set(g, options);
  const auto report = check_ruling_set(g, result.ruling_set, param.beta);
  EXPECT_TRUE(report.valid) << report.to_string();

  // Model conformance for the MPC algorithms.
  if (param.algorithm != Algorithm::kGreedySequential) {
    EXPECT_EQ(result.metrics.violations, 0u);
    EXPECT_GT(result.metrics.rounds, 0u);
  }
  // Randomness profile.
  const bool deterministic = param.algorithm == Algorithm::kDetRulingMpc ||
                             param.algorithm == Algorithm::kDetLubyMpc ||
                             param.algorithm == Algorithm::kGreedySequential;
  if (deterministic) {
    EXPECT_EQ(result.metrics.random_words, 0u);
  }
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  const std::vector<std::string> families = {"gnp",  "powerlaw", "regular",
                                             "tree", "grid",     "cliques"};
  const std::vector<VertexId> sizes = {64, 256, 1024};
  for (const auto& family : families) {
    for (VertexId n : sizes) {
      cases.push_back({family, n, Algorithm::kGreedySequential, 1});
      cases.push_back({family, n, Algorithm::kGreedySequential, 3});
      cases.push_back({family, n, Algorithm::kLubyMpc, 1});
      cases.push_back({family, n, Algorithm::kSampleGatherMpc, 2});
      cases.push_back({family, n, Algorithm::kDetRulingMpc, 2});
      cases.push_back({family, n, Algorithm::kDetRulingMpc, 3});
      if (n <= 256) {
        cases.push_back({family, n, Algorithm::kDetLubyMpc, 1});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, RulingSetSweep,
                         testing::ValuesIn(sweep_cases()), case_name);

}  // namespace
}  // namespace rsets
