// Exactness tests for the pairwise-independent marking family. These are the
// load-bearing tests of the whole derandomization stack: if the conditional
// probabilities here are exact, the method of conditional expectations'
// guarantee is sound.
#include "util/hash_family.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace rsets {
namespace {

// Enumerates all completions of the free seed bits of `level` and counts
// outcomes; used as ground truth for the O(1) conditional formulas.
double brute_prob_one(const PairwiseBitLevel& level, std::uint64_t v) {
  std::vector<int> free_bits;
  for (int i = 0; i <= level.bits(); ++i) {
    if (!level.bit_fixed(i)) free_bits.push_back(i);
  }
  const int f = static_cast<int>(free_bits.size());
  int ones = 0;
  for (std::uint32_t assign = 0; assign < (1u << f); ++assign) {
    PairwiseBitLevel copy = level;
    for (int b = 0; b < f; ++b) copy.fix_bit(free_bits[b], (assign >> b) & 1);
    ones += copy.eval(v);
  }
  return static_cast<double>(ones) / std::exp2(f);
}

double brute_prob_both(const PairwiseBitLevel& level, std::uint64_t u,
                       std::uint64_t v) {
  std::vector<int> free_bits;
  for (int i = 0; i <= level.bits(); ++i) {
    if (!level.bit_fixed(i)) free_bits.push_back(i);
  }
  const int f = static_cast<int>(free_bits.size());
  int both = 0;
  for (std::uint32_t assign = 0; assign < (1u << f); ++assign) {
    PairwiseBitLevel copy = level;
    for (int b = 0; b < f; ++b) copy.fix_bit(free_bits[b], (assign >> b) & 1);
    both += copy.eval(u) & copy.eval(v);
  }
  return static_cast<double>(both) / std::exp2(f);
}

TEST(PairwiseBitLevel, UnconditionalMarginalIsHalf) {
  PairwiseBitLevel level(4);
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_DOUBLE_EQ(level.prob_one(v), 0.5);
    EXPECT_DOUBLE_EQ(brute_prob_one(level, v), 0.5);
  }
}

TEST(PairwiseBitLevel, UnconditionalJointIsQuarter) {
  PairwiseBitLevel level(4);
  for (std::uint64_t u = 0; u < 8; ++u) {
    for (std::uint64_t v = u + 1; v < 8; ++v) {
      EXPECT_DOUBLE_EQ(level.prob_both_one(u, v), 0.25);
      EXPECT_DOUBLE_EQ(brute_prob_both(level, u, v), 0.25);
    }
  }
}

TEST(PairwiseBitLevel, ConditionalMarginalsMatchBruteForce) {
  // Sweep many random partial assignments; formulas must match enumeration
  // exactly (these are dyadic rationals — no tolerance needed).
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    PairwiseBitLevel level(5);
    const int to_fix = static_cast<int>(rng.below(6));
    for (int i = 0; i < to_fix; ++i) {
      level.fix_bit(static_cast<int>(rng.below(6)),
                    static_cast<int>(rng.below(2)));
    }
    for (std::uint64_t v = 0; v < 32; v += 3) {
      ASSERT_DOUBLE_EQ(level.prob_one(v), brute_prob_one(level, v))
          << "trial " << trial << " v " << v;
    }
  }
}

TEST(PairwiseBitLevel, ConditionalJointsMatchBruteForce) {
  Rng rng(7);
  for (int trial = 0; trial < 120; ++trial) {
    PairwiseBitLevel level(4);
    const int to_fix = static_cast<int>(rng.below(6));
    for (int i = 0; i < to_fix; ++i) {
      level.fix_bit(static_cast<int>(rng.below(5)),
                    static_cast<int>(rng.below(2)));
    }
    for (std::uint64_t u = 0; u < 16; u += 2) {
      for (std::uint64_t v = u + 1; v < 16; v += 3) {
        ASSERT_DOUBLE_EQ(level.prob_both_one(u, v),
                         brute_prob_both(level, u, v))
            << "trial " << trial << " pair (" << u << "," << v << ")";
      }
    }
  }
}

TEST(PairwiseBitLevel, FullyFixedEvaluates) {
  PairwiseBitLevel level(3);
  for (int i = 0; i <= 3; ++i) level.fix_bit(i, i % 2);
  ASSERT_TRUE(level.fully_fixed());
  // r = (0,1,0), c = 1: b(v) = v_1 XOR 1.
  EXPECT_EQ(level.eval(0b000), 1);
  EXPECT_EQ(level.eval(0b010), 0);
  EXPECT_EQ(level.eval(0b111), 0);
  EXPECT_EQ(level.eval(0b101), 1);
}

TEST(PairwiseBitLevel, ProbabilitiesCollapseToIndicators) {
  PairwiseBitLevel level(3);
  for (int i = 0; i <= 3; ++i) level.fix_bit(i, 1);
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_DOUBLE_EQ(level.prob_one(v), static_cast<double>(level.eval(v)));
  }
}

TEST(PairwiseBitLevel, RejectsBadInputs) {
  PairwiseBitLevel level(3);
  EXPECT_THROW(level.fix_bit(-1, 0), std::out_of_range);
  EXPECT_THROW(level.fix_bit(5, 0), std::out_of_range);
  EXPECT_THROW(level.fix_bit(0, 2), std::invalid_argument);
  EXPECT_THROW(level.eval(0), std::logic_error);
  EXPECT_THROW(PairwiseBitLevel(0), std::invalid_argument);
  EXPECT_THROW(PairwiseBitLevel(64), std::invalid_argument);
}

TEST(MarkingFamily, UnconditionalMarkingProbability) {
  const int k = 3;
  MarkingFamily family(16, k);
  for (std::uint64_t v : {0ULL, 5ULL, 15ULL}) {
    EXPECT_DOUBLE_EQ(family.prob_mark(v, k), std::exp2(-k));
    EXPECT_DOUBLE_EQ(family.prob_mark(v, 1), 0.5);
  }
}

TEST(MarkingFamily, PairwiseIndependenceOfMarks) {
  const int k = 2;
  MarkingFamily family(8, k);
  for (std::uint64_t u = 0; u < 8; ++u) {
    for (std::uint64_t v = u + 1; v < 8; ++v) {
      EXPECT_DOUBLE_EQ(family.prob_mark_both(u, k, v, k),
                       std::exp2(-2 * k));
    }
  }
}

TEST(MarkingFamily, TruncatedDepthsJoint) {
  MarkingFamily family(8, 3);
  // depth 1 vs depth 3: shared level contributes 1/4, v's extra two levels
  // contribute 1/2 each.
  EXPECT_DOUBLE_EQ(family.prob_mark_both(1, 1, 2, 3), 0.25 * 0.25);
}

TEST(MarkingFamily, EmpiricalMarkFractionOverSeeds) {
  // Exhaustively average the marking probability over all seeds for a tiny
  // family: ids in [0,4) (2 bits), k = 1 -> 8 seeds.
  const int ids = 4;
  MarkingFamily proto(ids, 1);
  const int seed_bits = proto.total_seed_bits();
  ASSERT_EQ(seed_bits, 3);
  std::vector<int> mark_count(ids, 0);
  for (std::uint32_t seed = 0; seed < (1u << seed_bits); ++seed) {
    MarkingFamily family(ids, 1);
    for (int b = 0; b < seed_bits; ++b) {
      family.fix_global_bit(b, (seed >> b) & 1);
    }
    for (int v = 0; v < ids; ++v) {
      mark_count[v] += family.mark(static_cast<std::uint64_t>(v)) ? 1 : 0;
    }
  }
  for (int v = 0; v < ids; ++v) EXPECT_EQ(mark_count[v], 4);  // 8 seeds * 1/2
}

TEST(MarkingFamily, SeedRoundTrip) {
  MarkingFamily family(16, 2);
  const int bits = family.total_seed_bits();
  for (int b = 0; b < bits; ++b) family.fix_global_bit(b, (b * 7 + 1) % 2);
  ASSERT_TRUE(family.fully_fixed());
  const auto seed = family.seed();
  ASSERT_EQ(static_cast<int>(seed.size()), bits);
  for (int b = 0; b < bits; ++b) EXPECT_EQ(seed[b], (b * 7 + 1) % 2);
}

TEST(MarkingFamily, FixedLevelsCountsPrefix) {
  MarkingFamily family(16, 3);
  EXPECT_EQ(family.fixed_levels(), 0);
  const int per_level = family.id_bits() + 1;
  for (int b = 0; b < per_level; ++b) family.fix_global_bit(b, 0);
  EXPECT_EQ(family.fixed_levels(), 1);
  EXPECT_FALSE(family.fully_fixed());
}

TEST(MarkingFamily, RejectsBadArguments) {
  EXPECT_THROW(MarkingFamily(16, 0), std::invalid_argument);
  MarkingFamily family(16, 1);
  EXPECT_THROW(family.locate(-1), std::out_of_range);
  EXPECT_THROW(family.locate(family.total_seed_bits()), std::out_of_range);
  EXPECT_THROW(family.prob_mark_both(3, 1, 3, 1), std::invalid_argument);
}

TEST(MixHash, DeterministicAndSaltSensitive) {
  EXPECT_EQ(mix_hash(42, 1), mix_hash(42, 1));
  EXPECT_NE(mix_hash(42, 1), mix_hash(42, 2));
  EXPECT_NE(mix_hash(42, 1), mix_hash(43, 1));
}

TEST(MixHash, SpreadsLowBits) {
  // Partitioning quality: consecutive keys should spread across 8 buckets.
  std::vector<int> counts(8, 0);
  for (std::uint64_t x = 0; x < 8000; ++x) counts[mix_hash(x, 5) % 8]++;
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

}  // namespace
}  // namespace rsets
