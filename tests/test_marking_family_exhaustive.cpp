// Exhaustive validation of MarkingFamily's multi-level conditional
// probabilities: for a tiny family, enumerate ALL seed completions and
// compare against prob_mark / prob_mark_both under randomly chosen partial
// assignments. This closes the gap left by the per-level tests in
// test_hash_family.cpp — multi-level products and per-vertex truncation
// depths are exercised here.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/hash_family.hpp"
#include "util/rng.hpp"

namespace rsets {
namespace {

// All unfixed global seed bits.
std::vector<int> free_bits(const MarkingFamily& family) {
  std::vector<int> out;
  for (int b = 0; b < family.total_seed_bits(); ++b) {
    const auto [lvl, idx] = family.locate(b);
    if (!family.level(lvl).bit_fixed(idx)) out.push_back(b);
  }
  return out;
}

double brute_prob_mark(const MarkingFamily& family, std::uint64_t v,
                       int depth) {
  const auto free_list = free_bits(family);
  const int f = static_cast<int>(free_list.size());
  int hits = 0;
  for (std::uint32_t assign = 0; assign < (1u << f); ++assign) {
    MarkingFamily copy = family;
    for (int b = 0; b < f; ++b) {
      copy.fix_global_bit(free_list[b], (assign >> b) & 1u);
    }
    hits += copy.mark_depth(v, depth) ? 1 : 0;
  }
  return static_cast<double>(hits) / std::exp2(f);
}

double brute_prob_both(const MarkingFamily& family, std::uint64_t u, int du,
                       std::uint64_t v, int dv) {
  const auto free_list = free_bits(family);
  const int f = static_cast<int>(free_list.size());
  int hits = 0;
  for (std::uint32_t assign = 0; assign < (1u << f); ++assign) {
    MarkingFamily copy = family;
    for (int b = 0; b < f; ++b) {
      copy.fix_global_bit(free_list[b], (assign >> b) & 1u);
    }
    hits += (copy.mark_depth(u, du) && copy.mark_depth(v, dv)) ? 1 : 0;
  }
  return static_cast<double>(hits) / std::exp2(f);
}

TEST(MarkingFamilyExhaustive, MarginalsMatchUnderPartialSeeds) {
  // ids in [0, 8) -> 3 id bits; 2 levels -> 8 seed bits total.
  Rng rng(71);
  for (int trial = 0; trial < 30; ++trial) {
    MarkingFamily family(8, 2);
    const int to_fix = static_cast<int>(rng.below(5));
    for (int i = 0; i < to_fix; ++i) {
      family.fix_global_bit(
          static_cast<int>(rng.below(family.total_seed_bits())),
          static_cast<int>(rng.below(2)));
    }
    for (std::uint64_t v = 0; v < 8; ++v) {
      for (int depth : {1, 2}) {
        ASSERT_DOUBLE_EQ(family.prob_mark(v, depth),
                         brute_prob_mark(family, v, depth))
            << "trial " << trial << " v " << v << " depth " << depth;
      }
    }
  }
}

TEST(MarkingFamilyExhaustive, JointsMatchUnderPartialSeeds) {
  // NOTE on exactness: prob_mark_both multiplies per-level joints, which is
  // exact because levels have disjoint seed bits; within a level the O(1)
  // coset formulas are validated against enumeration here.
  Rng rng(72);
  for (int trial = 0; trial < 20; ++trial) {
    MarkingFamily family(4, 2);  // 2 id bits, 2 levels -> 6 seed bits
    const int to_fix = static_cast<int>(rng.below(4));
    for (int i = 0; i < to_fix; ++i) {
      family.fix_global_bit(
          static_cast<int>(rng.below(family.total_seed_bits())),
          static_cast<int>(rng.below(2)));
    }
    for (std::uint64_t u = 0; u < 4; ++u) {
      for (std::uint64_t v = u + 1; v < 4; ++v) {
        for (int du : {1, 2}) {
          for (int dv : {1, 2}) {
            ASSERT_DOUBLE_EQ(family.prob_mark_both(u, du, v, dv),
                             brute_prob_both(family, u, du, v, dv))
                << "trial " << trial << " (" << u << "," << v << ") depths ("
                << du << "," << dv << ")";
          }
        }
      }
    }
  }
}

TEST(MarkingFamilyExhaustive, TruncationDepthsGiveDyadicMarginals) {
  MarkingFamily family(16, 4);
  for (std::uint64_t v : {0ull, 7ull, 15ull}) {
    for (int depth = 1; depth <= 4; ++depth) {
      EXPECT_DOUBLE_EQ(family.prob_mark(v, depth), std::exp2(-depth));
    }
  }
}

}  // namespace
}  // namespace rsets
