// Tests of the derandomized marking step — the paper's core primitive.
#include "core/derand.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "mpc/dist_graph.hpp"
#include "util/bits.hpp"

namespace rsets {
namespace {

mpc::MpcConfig big_config(mpc::MachineId machines = 4) {
  mpc::MpcConfig cfg;
  cfg.num_machines = machines;
  cfg.memory_words = 1 << 22;
  cfg.seed = 5;
  return cfg;
}

struct Harness {
  mpc::Simulator sim;
  mpc::DistGraph dg;
  Harness(const Graph& g, mpc::MachineId machines = 4)
      : sim(big_config(machines)), dg(sim, g) {}
};

std::vector<VertexId> high_degree_targets(const Graph& g, std::uint32_t d) {
  std::vector<VertexId> targets;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) >= d) targets.push_back(v);
  }
  return targets;
}

DerandMarkOptions options_for(std::uint32_t d, std::uint64_t edge_budget,
                              int chunk_bits = 4) {
  DerandMarkOptions opt;
  opt.levels = std::max(ceil_log2(d + 1), 1);
  opt.edge_budget = edge_budget;
  opt.chunk_bits = chunk_bits;
  return opt;
}

TEST(DerandMark, CoversAtLeastEighthOfTargets) {
  const Graph g = gen::gnp(600, 0.05, 11);  // avg degree ~30
  Harness s(g);
  const std::uint32_t d = 16;
  const auto targets = high_degree_targets(g, d);
  ASSERT_GT(targets.size(), 100u);
  const std::vector<bool> all(g.num_vertices(), true);
  const auto res =
      derand_mark(s.sim, s.dg, all, targets, options_for(d, 1 << 20));
  EXPECT_GE(res.covered_targets, targets.size() / 8);
  EXPECT_FALSE(res.marked.empty());
}

TEST(DerandMark, FinalEstimateAtLeastInitial) {
  const Graph g = gen::random_regular(400, 20, 3);
  Harness s(g);
  const auto targets = high_degree_targets(g, 16);
  const std::vector<bool> all(g.num_vertices(), true);
  const auto res =
      derand_mark(s.sim, s.dg, all, targets, options_for(16, 1 << 20));
  EXPECT_GE(res.final_estimate, res.initial_estimate - 1e-9);
}

TEST(DerandMark, RespectsEdgeBudget) {
  // Tight budget: the lambda penalty must keep marked-subgraph edges in
  // check. By the analysis, final edges <= budget whenever E[X] <= budget/32.
  const Graph g = gen::gnp(800, 0.04, 7);  // m ~ 12800, avg deg 32
  Harness s(g);
  const std::uint32_t d = 64;  // p ~ 1/128 -> E[X] ~ m/16384 ~ tiny
  const auto targets = high_degree_targets(g, 40);
  const std::vector<bool> all(g.num_vertices(), true);
  const std::uint64_t budget = 2048;
  const auto res = derand_mark(s.sim, s.dg, all, targets,
                               options_for(d, budget));
  EXPECT_LE(res.marked_edges, budget);
}

TEST(DerandMark, MarkedVerticesAreActiveCandidates) {
  const Graph g = gen::gnp(300, 0.05, 9);
  Harness s(g);
  // Restrict candidates to even ids.
  std::vector<bool> candidates(g.num_vertices(), false);
  for (VertexId v = 0; v < g.num_vertices(); v += 2) candidates[v] = true;
  const auto targets = high_degree_targets(g, 8);
  const auto res = derand_mark(s.sim, s.dg, candidates, targets,
                               options_for(8, 1 << 20));
  for (VertexId v : res.marked) EXPECT_EQ(v % 2, 0u);
}

TEST(DerandMark, DeterministicAcrossRunsAndMachineCounts) {
  const Graph g = gen::power_law(400, 2.5, 10.0, 13);
  const auto targets = high_degree_targets(g, 8);
  const std::vector<bool> all(g.num_vertices(), true);
  std::vector<VertexId> first;
  for (mpc::MachineId machines : {2, 4, 7}) {
    Harness s(g, machines);
    const auto res = derand_mark(s.sim, s.dg, all, targets,
                                 options_for(8, 1 << 20));
    if (first.empty()) {
      first = res.marked;
      ASSERT_FALSE(first.empty());
    } else {
      EXPECT_EQ(res.marked, first) << machines << " machines";
    }
  }
}

TEST(DerandMark, ConsumesZeroRandomBits) {
  const Graph g = gen::gnp(300, 0.05, 1);
  Harness s(g);
  const auto targets = high_degree_targets(g, 8);
  const std::vector<bool> all(g.num_vertices(), true);
  derand_mark(s.sim, s.dg, all, targets, options_for(8, 1 << 20));
  s.sim.sync_metrics();
  EXPECT_EQ(s.sim.metrics().random_words, 0u);
}

TEST(DerandMark, RoundCostIsTwoPerChunk) {
  const Graph g = gen::gnp(200, 0.08, 2);
  Harness s(g);
  const auto targets = high_degree_targets(g, 8);
  const std::vector<bool> all(g.num_vertices(), true);
  const auto res =
      derand_mark(s.sim, s.dg, all, targets, options_for(8, 1 << 20));
  EXPECT_EQ(res.rounds, 2ull * static_cast<std::uint64_t>(res.chunks));
}

TEST(DerandMark, ChunkWidthDoesNotAffectGuarantee) {
  const Graph g = gen::random_regular(300, 12, 8);
  const auto targets = high_degree_targets(g, 10);
  const std::vector<bool> all(g.num_vertices(), true);
  for (int chunk : {1, 2, 5, 8}) {
    Harness s(g);
    const auto res = derand_mark(s.sim, s.dg, all, targets,
                                 options_for(10, 1 << 20, chunk));
    EXPECT_GE(res.covered_targets, targets.size() / 8) << "chunk " << chunk;
    EXPECT_GE(res.final_estimate, res.initial_estimate - 1e-9);
  }
}

TEST(DerandMark, EmptyTargetsStillSelectsSafely) {
  const Graph g = gen::gnp(100, 0.05, 4);
  Harness s(g);
  const std::vector<bool> all(g.num_vertices(), true);
  const auto res = derand_mark(s.sim, s.dg, all, {}, options_for(4, 1 << 20));
  EXPECT_EQ(res.covered_targets, 0u);
  EXPECT_LE(res.marked_edges, std::uint64_t{1} << 20);
}

TEST(DerandMark, RejectsBadOptions) {
  const Graph g = gen::path(10);
  Harness s(g);
  const std::vector<bool> all(g.num_vertices(), true);
  DerandMarkOptions bad;
  bad.levels = 0;
  EXPECT_THROW(derand_mark(s.sim, s.dg, all, {}, bad), std::invalid_argument);
  bad.levels = 1;
  bad.edge_budget = 0;
  EXPECT_THROW(derand_mark(s.sim, s.dg, all, {}, bad), std::invalid_argument);
  bad.edge_budget = 10;
  bad.chunk_bits = 0;
  EXPECT_THROW(derand_mark(s.sim, s.dg, all, {}, bad), std::invalid_argument);
}

TEST(DerandMark, MarkingFractionNearExpectation) {
  // With k levels the marked fraction should be near 2^-k of candidates
  // (the estimator only nudges the seed, it does not rewrite marginals).
  const Graph g = gen::random_regular(2000, 8, 5);
  Harness s(g);
  const std::uint32_t d = 8;
  const auto targets = high_degree_targets(g, d);
  const std::vector<bool> all(g.num_vertices(), true);
  const auto opt = options_for(d, 1 << 20);
  const auto res = derand_mark(s.sim, s.dg, all, targets, opt);
  const double p = std::exp2(-opt.levels);
  const double expected = p * g.num_vertices();
  EXPECT_GT(static_cast<double>(res.marked.size()), expected / 8.0);
  EXPECT_LT(static_cast<double>(res.marked.size()), expected * 8.0);
}

}  // namespace
}  // namespace rsets
