#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/ops.hpp"

namespace rsets {
namespace {

TEST(Gnp, EdgeCountNearExpectation) {
  const VertexId n = 2000;
  const double p = 0.01;
  const Graph g = gen::gnp(n, p, 1);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
              5.0 * std::sqrt(expected));
}

TEST(Gnp, ZeroAndOneProbability) {
  EXPECT_EQ(gen::gnp(50, 0.0, 1).num_edges(), 0u);
  EXPECT_EQ(gen::gnp(10, 1.0, 1).num_edges(), 45u);
}

TEST(Gnp, DeterministicInSeed) {
  const Graph a = gen::gnp(500, 0.02, 7);
  const Graph b = gen::gnp(500, 0.02, 7);
  EXPECT_EQ(a.edges(), b.edges());
  const Graph c = gen::gnp(500, 0.02, 8);
  EXPECT_NE(a.edges(), c.edges());
}

TEST(Gnm, ExactEdgeCount) {
  const Graph g = gen::gnm(100, 250, 3);
  EXPECT_EQ(g.num_edges(), 250u);
  EXPECT_THROW(gen::gnm(4, 7, 1), std::invalid_argument);
}

TEST(RandomRegular, DegreesAtMostD) {
  const Graph g = gen::random_regular(200, 6, 5);
  std::uint64_t at_degree = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(g.degree(v), 6u);
    if (g.degree(v) == 6) ++at_degree;
  }
  // Configuration model loses only a few edges to loops/duplicates.
  EXPECT_GT(at_degree, 150u);
  EXPECT_THROW(gen::random_regular(5, 3, 1), std::invalid_argument);
  EXPECT_THROW(gen::random_regular(4, 4, 1), std::invalid_argument);
}

TEST(PowerLaw, HeavyTail) {
  const Graph g = gen::power_law(5000, 2.5, 8.0, 11);
  const auto stats = degree_stats(g);
  // Average close-ish to target; max far above average (heavy tail).
  EXPECT_NEAR(stats.mean, 8.0, 3.0);
  EXPECT_GT(stats.max, 50u);
}

TEST(BarabasiAlbert, SizeAndHubs) {
  const Graph g = gen::barabasi_albert(1000, 3, 2);
  EXPECT_EQ(g.num_vertices(), 1000u);
  // Each non-seed vertex adds up to 3 edges.
  EXPECT_LE(g.num_edges(), 3u * 1000u + 6u);
  EXPECT_GT(g.max_degree(), 20u);  // hubs emerge
  EXPECT_THROW(gen::barabasi_albert(5, 0, 1), std::invalid_argument);
}

TEST(Rmat, RespectsBounds) {
  const Graph g = gen::rmat(1000, 4000, 0.57, 0.19, 0.19, 4);
  EXPECT_EQ(g.num_vertices(), 1000u);
  EXPECT_LE(g.num_edges(), 4000u);
  EXPECT_GT(g.num_edges(), 2500u);  // some dedup is expected, not collapse
}

TEST(GridAndTorus, Structure) {
  const Graph g = gen::grid(4, 5);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_EQ(g.num_edges(), 4u * 4 + 5u * 3);  // 31
  EXPECT_EQ(g.max_degree(), 4u);

  const Graph t = gen::torus(4, 5);
  EXPECT_EQ(t.num_edges(), 40u);
  for (VertexId v = 0; v < t.num_vertices(); ++v) EXPECT_EQ(t.degree(v), 4u);
}

TEST(PathCycleStar, Structure) {
  EXPECT_EQ(gen::path(10).num_edges(), 9u);
  EXPECT_EQ(gen::cycle(10).num_edges(), 10u);
  const Graph s = gen::star(10);
  EXPECT_EQ(s.num_edges(), 9u);
  EXPECT_EQ(s.degree(0), 9u);
}

TEST(CompleteGraphs, Structure) {
  EXPECT_EQ(gen::complete(6).num_edges(), 15u);
  const Graph kb = gen::complete_bipartite(3, 4);
  EXPECT_EQ(kb.num_edges(), 12u);
  EXPECT_EQ(kb.degree(0), 4u);
  EXPECT_EQ(kb.degree(3), 3u);
}

TEST(RandomTree, IsTree) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = gen::random_tree(200, seed);
    EXPECT_EQ(g.num_edges(), 199u);
    const auto comp = connected_components(g);
    for (std::uint32_t c : comp) EXPECT_EQ(c, 0u);
  }
}

TEST(RandomTree, TinyCases) {
  EXPECT_EQ(gen::random_tree(1, 0).num_edges(), 0u);
  EXPECT_EQ(gen::random_tree(2, 0).num_edges(), 1u);
  const Graph g3 = gen::random_tree(3, 1);
  EXPECT_EQ(g3.num_edges(), 2u);
}

TEST(Caterpillar, Structure) {
  const Graph g = gen::caterpillar(5, 3);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_EQ(g.num_edges(), 4u + 15u);
}

TEST(CliqueBlowup, Structure) {
  const Graph g = gen::clique_blowup(4, 5);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_EQ(g.num_edges(), 4u * 10u);
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[4]);
  EXPECT_NE(comp[0], comp[5]);
}

TEST(HospitalContacts, Structure) {
  const Graph g = gen::hospital_contacts(6, 8, 10, 12, 3);
  EXPECT_EQ(g.num_vertices(), 6u * 8 + 10u);
  // Staff vertices have high degree.
  std::uint32_t staff_min = g.num_vertices();
  for (VertexId v = 48; v < g.num_vertices(); ++v) {
    staff_min = std::min(staff_min, g.degree(v));
  }
  EXPECT_GT(staff_min, 0u);
}

TEST(StandardSuite, AllFamiliesNonTrivial) {
  const auto suite = gen::standard_suite(400, 17);
  EXPECT_GE(suite.size(), 8u);
  for (const auto& entry : suite) {
    EXPECT_GT(entry.graph.num_vertices(), 0u) << entry.name;
    EXPECT_GT(entry.graph.num_edges(), 0u) << entry.name;
  }
}

}  // namespace
}  // namespace rsets
