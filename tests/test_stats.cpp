#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rsets {
namespace {

TEST(Summary, Empty) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, NegativeValues) {
  Summary s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_NEAR(s.variance(), 18.0, 1e-12);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bucket 0
  h.add(9.5);   // bucket 4
  h.add(-1.0);  // clamps to 0
  h.add(42.0);  // clamps to 4
  h.add(5.0);   // bucket 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(2), 6.0);
}

TEST(Histogram, RejectsBadArguments) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(CsvTable, WritesHeaderAndRows) {
  CsvTable t({"a", "b"});
  t.add_row({"1", "x"});
  t.add_row({"2", "y"});
  std::ostringstream os;
  t.write(os);
  EXPECT_EQ(os.str(), "a,b\n1,x\n2,y\n");
}

TEST(CsvTable, RejectsWrongWidth) {
  CsvTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(CsvTable, FormatsNumbers) {
  EXPECT_EQ(CsvTable::fmt(std::uint64_t{42}), "42");
  EXPECT_EQ(CsvTable::fmt(1.5), "1.5");
}

}  // namespace
}  // namespace rsets
