#include "core/greedy.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "graph/verify.hpp"

namespace rsets {
namespace {

TEST(GreedyMis, ValidOnSuite) {
  for (const auto& entry : gen::standard_suite(500, 3)) {
    const auto mis = greedy_mis(entry.graph);
    EXPECT_TRUE(is_maximal_independent_set(entry.graph, mis)) << entry.name;
  }
}

TEST(GreedyMis, LexicographicallyFirst) {
  // On a path 0-1-2-3-4 the greedy MIS is {0, 2, 4}.
  const auto mis = greedy_mis(gen::path(5));
  EXPECT_EQ(mis, (std::vector<VertexId>{0, 2, 4}));
}

TEST(GreedyMis, EdgeCases) {
  EXPECT_TRUE(greedy_mis(Graph::from_edges(0, {})).empty());
  EXPECT_EQ(greedy_mis(Graph::from_edges(3, {})).size(), 3u);
  EXPECT_EQ(greedy_mis(gen::complete(10)).size(), 1u);
}

TEST(GreedyRulingSet, BetaOneIsMis) {
  const Graph g = gen::gnp(200, 0.05, 1);
  EXPECT_EQ(greedy_ruling_set(g, 1), greedy_mis(g));
}

TEST(GreedyRulingSet, ValidAcrossBetas) {
  for (const auto& entry : gen::standard_suite(300, 9)) {
    for (std::uint32_t beta : {1u, 2u, 3u, 4u}) {
      const auto set = greedy_ruling_set(entry.graph, beta);
      EXPECT_TRUE(is_beta_ruling_set(entry.graph, set, beta))
          << entry.name << " beta=" << beta;
    }
  }
}

TEST(GreedyRulingSet, LargerBetaNeverLarger) {
  const Graph g = gen::grid(20, 20);
  std::size_t prev = greedy_ruling_set(g, 1).size();
  for (std::uint32_t beta = 2; beta <= 5; ++beta) {
    const std::size_t cur = greedy_ruling_set(g, beta).size();
    EXPECT_LE(cur, prev) << "beta=" << beta;
    prev = cur;
  }
}

TEST(GreedyRulingSet, MatchesPowerGraphMisSemantics) {
  // A beta-ruling set is exactly an independent set of G that dominates in
  // G^beta; verify the greedy output against the explicit power graph.
  const Graph g = gen::random_tree(120, 4);
  const std::uint32_t beta = 3;
  const auto set = greedy_ruling_set(g, beta);
  const Graph gb = power_graph(g, static_cast<int>(beta));
  // Domination in G^beta:
  EXPECT_LE(domination_radius(gb, set), 1u);
}

TEST(GreedyRulingSet, RejectsBetaZero) {
  EXPECT_THROW(greedy_ruling_set(gen::path(3), 0), std::invalid_argument);
}

}  // namespace
}  // namespace rsets
