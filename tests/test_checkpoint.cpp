// Checkpoint/restore: byte-stream primitives, FieldsSnapshot driver hooks,
// full Simulator snapshots (take mid-run, restore, rerun the tail
// bit-identically), disk round trips, and decode validation.
#include "mpc/fault/checkpoint.hpp"

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mpc/simulator.hpp"

namespace rsets::mpc {
namespace {

TEST(SnapshotStream, RoundTripsEveryPrimitive) {
  std::vector<std::uint8_t> buf;
  SnapshotWriter w(buf);
  w.u64(0);
  w.u64(0xFFFFFFFFFFFFFFFFull);
  w.str("");
  w.str("hello snapshot");
  w.vec(std::vector<std::uint64_t>{1, 2, 3});
  w.vec(std::vector<std::uint32_t>{});
  w.vec(std::vector<bool>{true, false, true, true});

  SnapshotReader r(buf.data(), buf.size());
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_EQ(r.u64(), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "hello snapshot");
  std::vector<std::uint64_t> v64;
  r.vec(v64);
  EXPECT_EQ(v64, (std::vector<std::uint64_t>{1, 2, 3}));
  std::vector<std::uint32_t> v32{9};
  r.vec(v32);
  EXPECT_TRUE(v32.empty());
  std::vector<bool> vb;
  r.vec(vb);
  EXPECT_EQ(vb, (std::vector<bool>{true, false, true, true}));
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SnapshotStream, TruncationThrows) {
  std::vector<std::uint8_t> buf;
  SnapshotWriter w(buf);
  w.u64(7);
  SnapshotReader r(buf.data(), buf.size() - 1);
  EXPECT_THROW(r.u64(), CheckpointError);
}

TEST(SnapshotStream, ImpossibleLengthPrefixThrows) {
  // A length prefix claiming more elements than bytes remain must be
  // rejected before any allocation.
  std::vector<std::uint8_t> buf;
  SnapshotWriter w(buf);
  w.u64(0xFFFFFFFFFFFFFFF0ull);
  SnapshotReader r(buf.data(), buf.size());
  std::vector<std::uint64_t> v;
  EXPECT_THROW(r.vec(v), CheckpointError);

  SnapshotReader r2(buf.data(), buf.size());
  EXPECT_THROW(r2.str(), CheckpointError);
}

TEST(FieldsSnapshot, SaveThenRestoreUndoesMutation) {
  std::uint64_t counter = 41;
  std::uint32_t small = 7;
  std::vector<std::uint64_t> ids = {3, 1, 4};
  std::vector<bool> mask = {true, false, true};
  auto snap = snapshot_of(counter, small, ids, mask);

  std::vector<std::uint8_t> buf;
  SnapshotWriter w(buf);
  snap.save(w);

  counter = 0;
  small = 0;
  ids.clear();
  mask.assign(5, true);

  SnapshotReader r(buf.data(), buf.size());
  snap.restore(r);
  EXPECT_EQ(counter, 41u);
  EXPECT_EQ(small, 7u);
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{3, 1, 4}));
  EXPECT_EQ(mask, (std::vector<bool>{true, false, true}));
  EXPECT_EQ(r.remaining(), 0u);
}

// --- full simulator snapshots ----------------------------------------------

MpcConfig small_config(MachineId machines = 4) {
  MpcConfig cfg;
  cfg.num_machines = machines;
  cfg.memory_words = 1 << 16;
  cfg.seed = 7;
  return cfg;
}

// A toy driver: every machine keeps a running sum of everything it
// received and ships its RNG-perturbed id around a ring each round.
struct RingDriver {
  explicit RingDriver(MachineId machines) : sums(machines, 0) {}

  void step(Simulator& sim) {
    sim.round([this](Machine& m, const Inbox& inbox) {
      for (const auto& msg : inbox.all()) {
        sums[m.id()] += msg.payload[0];
      }
      const MachineId next = (m.id() + 1) % static_cast<MachineId>(sums.size());
      m.sender(next, 1).push(m.id() + (m.rng().next() & 0xFF));
    });
  }

  std::vector<std::uint64_t> sums;
};

TEST(SimulatorCheckpoint, RestoreReplaysTailBitIdentically) {
  const MachineId machines = 4;

  Simulator sim(small_config(machines));
  RingDriver driver(machines);
  auto snap = snapshot_of(driver.sums);
  sim.register_snapshotable("ring", &snap);

  for (int i = 0; i < 5; ++i) driver.step(sim);
  const Checkpoint mid = sim.make_checkpoint();
  EXPECT_EQ(mid.round, sim.metrics().rounds);
  EXPECT_FALSE(mid.empty());

  for (int i = 0; i < 5; ++i) driver.step(sim);
  const auto final_sums = driver.sums;
  const auto final_metrics = sim.metrics();

  // Wreck everything, restore the mid-run snapshot, rerun the tail.
  driver.sums.assign(machines, 0xDEAD);
  sim.restore_checkpoint(mid);
  EXPECT_EQ(sim.metrics().rounds, mid.round);
  for (int i = 0; i < 5; ++i) driver.step(sim);

  EXPECT_EQ(driver.sums, final_sums);
  EXPECT_EQ(sim.metrics().rounds, final_metrics.rounds);
  EXPECT_EQ(sim.metrics().messages, final_metrics.messages);
  EXPECT_EQ(sim.metrics().total_words, final_metrics.total_words);
  EXPECT_EQ(sim.metrics().random_words, final_metrics.random_words);
}

TEST(SimulatorCheckpoint, CapturesInFlightMessages) {
  Simulator sim(small_config(2));
  sim.round([](Machine& m, const Inbox&) {
    if (m.id() == 0) m.sender(1, 5).push(77);
  });
  // The 0->1 message is in flight at this barrier; the snapshot must carry
  // it so the restored run still delivers it.
  const Checkpoint at_barrier = sim.make_checkpoint();

  std::uint64_t got = 0;
  sim.round([&](Machine& m, const Inbox& inbox) {
    if (m.id() == 1 && !inbox.empty()) got = inbox.all()[0].payload[0];
  });
  ASSERT_EQ(got, 77u);

  got = 0;
  sim.restore_checkpoint(at_barrier);
  sim.round([&](Machine& m, const Inbox& inbox) {
    if (m.id() == 1 && !inbox.empty()) got = inbox.all()[0].payload[0];
  });
  EXPECT_EQ(got, 77u);
}

TEST(SimulatorCheckpoint, FramedInFlightSectionSurvivesTheParallelBarrier) {
  // The v4 in-flight section serializes (src, dst, messages, arena) framed
  // buffers — exactly what the destination-sharded merge now produces in
  // parallel. The format did not move with the barrier rework: a snapshot
  // taken under any thread width must stay version 4 and restore with the
  // in-flight frames intact on any other width.
  EXPECT_EQ(kCheckpointVersion, 4u);
  Checkpoint taken_at[2];
  for (const unsigned threads : {1u, 4u}) {
    MpcConfig cfg = small_config(2);
    cfg.num_threads = threads;
    Simulator sim(cfg);
    sim.round([](Machine& m, const Inbox&) {
      if (m.id() == 0) m.sender(1, 5).push(77).push(78);
    });
    taken_at[threads == 1 ? 0 : 1] = sim.make_checkpoint();

    std::vector<std::uint64_t> got;
    sim.restore_checkpoint(taken_at[threads == 1 ? 0 : 1]);
    sim.round([&](Machine& m, const Inbox& inbox) {
      if (m.id() == 1 && !inbox.empty()) {
        got.assign(inbox.all()[0].payload.begin(),
                   inbox.all()[0].payload.end());
      }
    });
    EXPECT_EQ(got, (std::vector<std::uint64_t>{77, 78}))
        << "threads=" << threads;
  }
  // The encoded image itself is thread-invariant, frames and all.
  EXPECT_EQ(taken_at[0].bytes, taken_at[1].bytes);
}

TEST(SimulatorCheckpoint, RegisterSnapshotableValidates) {
  Simulator sim(small_config(2));
  std::uint64_t x = 0;
  auto snap = snapshot_of(x);
  EXPECT_THROW(sim.register_snapshotable("", &snap), std::invalid_argument);
  EXPECT_THROW(sim.register_snapshotable("x", nullptr), std::invalid_argument);
  sim.register_snapshotable("x", &snap);
  EXPECT_THROW(sim.register_snapshotable("x", &snap), std::invalid_argument);
}

TEST(SimulatorCheckpoint, RestoreValidatesShape) {
  Simulator sim(small_config(2));
  std::uint64_t x = 3;
  auto snap = snapshot_of(x);
  sim.register_snapshotable("state", &snap);
  const Checkpoint good = sim.make_checkpoint();

  // Wrong machine count.
  Simulator other(small_config(3));
  std::uint64_t y = 0;
  auto other_snap = snapshot_of(y);
  other.register_snapshotable("state", &other_snap);
  EXPECT_THROW(other.restore_checkpoint(good), CheckpointError);

  // Section name mismatch.
  Simulator renamed(small_config(2));
  std::uint64_t z = 0;
  auto renamed_snap = snapshot_of(z);
  renamed.register_snapshotable("other_name", &renamed_snap);
  EXPECT_THROW(renamed.restore_checkpoint(good), CheckpointError);

  // Bad magic.
  Checkpoint corrupt = good;
  corrupt.bytes[0] ^= 0xFF;
  EXPECT_THROW(sim.restore_checkpoint(corrupt), CheckpointError);

  // Truncated payload.
  Checkpoint truncated = good;
  truncated.bytes.resize(truncated.bytes.size() - 1);
  EXPECT_THROW(sim.restore_checkpoint(truncated), CheckpointError);

  // The pristine snapshot still restores after all the failed attempts.
  x = 99;
  sim.restore_checkpoint(good);
  EXPECT_EQ(x, 3u);
}

TEST(CheckpointImage, SealThenVerifyRoundTrips) {
  std::vector<std::uint8_t> bytes = {1, 2, 3, 4, 5};
  seal_checkpoint(bytes);
  EXPECT_EQ(bytes.size(), 5u + sizeof(std::uint64_t));
  EXPECT_NO_THROW(verify_checkpoint_image(bytes, "test"));

  // Every single-bit flip anywhere in the sealed image is detected —
  // including flips inside the stored digest itself.
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    std::vector<std::uint8_t> rotted = bytes;
    rotted[byte] ^= 0x10;
    EXPECT_THROW(verify_checkpoint_image(rotted, "test"), CheckpointError)
        << "flip at byte " << byte << " escaped the digest";
  }

  // Too short to carry a digest at all.
  const std::vector<std::uint8_t> stub = {9, 9, 9};
  EXPECT_THROW(verify_checkpoint_image(stub, "test"), CheckpointError);
}

TEST(SimulatorCheckpoint, RestoreRejectsInteriorBitRot) {
  Simulator sim(small_config(2));
  RingDriver driver(2);
  auto snap = snapshot_of(driver.sums);
  sim.register_snapshotable("ring", &snap);
  for (int i = 0; i < 3; ++i) driver.step(sim);
  const Checkpoint good = sim.make_checkpoint();

  // A flip past the header would have decoded under v2 (only magic/version
  // were validated) and restored silently wrong state; the v3 whole-image
  // digest fails it loudly instead.
  Checkpoint rotted = good;
  rotted.bytes[rotted.bytes.size() / 2] ^= 0x04;
  EXPECT_THROW(sim.restore_checkpoint(rotted), CheckpointError);

  // The pristine image still restores afterwards.
  sim.restore_checkpoint(good);
  EXPECT_EQ(sim.metrics().rounds, good.round);
}

TEST(SimulatorCheckpoint, DiskRoundTrip) {
  Simulator sim(small_config(2));
  RingDriver driver(2);
  auto snap = snapshot_of(driver.sums);
  sim.register_snapshotable("ring", &snap);
  for (int i = 0; i < 3; ++i) driver.step(sim);

  const Checkpoint mid = sim.make_checkpoint();
  const std::string path =
      ::testing::TempDir() + "rsets_checkpoint_roundtrip.ckpt";
  write_checkpoint_file(mid, path);
  const Checkpoint loaded = read_checkpoint_file(path);
  EXPECT_EQ(loaded.round, mid.round);
  EXPECT_EQ(loaded.bytes, mid.bytes);

  // A file that fails header validation is rejected on read.
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "not a checkpoint";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  EXPECT_THROW(read_checkpoint_file(path), CheckpointError);
  std::remove(path.c_str());

  EXPECT_THROW(write_checkpoint_file(Checkpoint{}, path), CheckpointError);
  EXPECT_THROW(read_checkpoint_file("/nonexistent/dir/x.ckpt"),
               CheckpointError);
}

TEST(SimulatorCheckpoint, AtomicWriteLeavesNoTempFile) {
  Simulator sim(small_config(2));
  const Checkpoint ckpt = sim.make_checkpoint();
  const std::string path = ::testing::TempDir() + "rsets_checkpoint_atomic.ckpt";
  write_checkpoint_file(ckpt, path);
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp) std::fclose(tmp);
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());
}

TEST(SimulatorCheckpoint, CorruptPrimaryFallsBackToPrev) {
  Simulator sim(small_config(2));
  RingDriver driver(2);
  auto snap = snapshot_of(driver.sums);
  sim.register_snapshotable("ring", &snap);

  const std::string path =
      ::testing::TempDir() + "rsets_checkpoint_fallback.ckpt";
  for (int i = 0; i < 2; ++i) driver.step(sim);
  const Checkpoint older = sim.make_checkpoint();
  write_checkpoint_file(older, path);

  for (int i = 0; i < 2; ++i) driver.step(sim);
  const Checkpoint newer = sim.make_checkpoint();
  // The second write rotates the first checkpoint to "<path>.prev".
  write_checkpoint_file(newer, path);
  EXPECT_EQ(read_checkpoint_file(path).round, newer.round);

  // Corrupt the primary in place; the read must recover the rotated copy.
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "scrambled checkpoint bytes";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  const Checkpoint recovered = read_checkpoint_file(path);
  EXPECT_EQ(recovered.round, older.round);
  EXPECT_EQ(recovered.bytes, older.bytes);

  // The recovered checkpoint actually restores.
  sim.restore_checkpoint(recovered);
  EXPECT_EQ(sim.metrics().rounds, older.round);

  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());
}

TEST(SimulatorCheckpoint, BitRottedPrimaryFallsBackToPrev) {
  Simulator sim(small_config(2));
  RingDriver driver(2);
  auto snap = snapshot_of(driver.sums);
  sim.register_snapshotable("ring", &snap);

  const std::string path =
      ::testing::TempDir() + "rsets_checkpoint_bitrot.ckpt";
  for (int i = 0; i < 2; ++i) driver.step(sim);
  const Checkpoint older = sim.make_checkpoint();
  write_checkpoint_file(older, path);
  for (int i = 0; i < 2; ++i) driver.step(sim);
  const Checkpoint newer = sim.make_checkpoint();
  write_checkpoint_file(newer, path);

  // Flip ONE interior bit of the primary, leaving the magic/version header
  // pristine: under the v2 header-only validation this torn image read back
  // "successfully"; the v3 whole-image digest rejects it and the read
  // recovers the rotated previous generation instead.
  std::vector<std::uint8_t> torn = newer.bytes;
  torn[torn.size() / 2] ^= 0x01;
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(torn.data(), 1, torn.size(), f);
    std::fclose(f);
  }
  const Checkpoint recovered = read_checkpoint_file(path);
  EXPECT_EQ(recovered.round, older.round);
  EXPECT_EQ(recovered.bytes, older.bytes);

  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());
}

}  // namespace
}  // namespace rsets::mpc
