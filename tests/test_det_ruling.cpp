// End-to-end tests of the deterministic MPC ruling-set algorithm.
#include "core/det_ruling.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/verify.hpp"

namespace rsets {
namespace {

mpc::MpcConfig config_for(std::size_t memory = 1 << 22,
                          mpc::MachineId machines = 4) {
  mpc::MpcConfig cfg;
  cfg.num_machines = machines;
  cfg.memory_words = memory;
  cfg.seed = 1;
  return cfg;
}

TEST(DetRuling, ValidTwoRulingOnSuite) {
  for (const auto& entry : gen::standard_suite(400, 21)) {
    const auto result = det_ruling_set_mpc(entry.graph, config_for());
    EXPECT_TRUE(is_beta_ruling_set(entry.graph, result.ruling_set, 2))
        << entry.name;
    EXPECT_FALSE(result.ruling_set.empty()) << entry.name;
  }
}

TEST(DetRuling, ZeroRandomWords) {
  const Graph g = gen::gnp(500, 0.03, 17);
  DetRulingOptions opt;
  opt.gather_budget_words = 2048;  // force derandomized phases to run
  const auto result = det_ruling_set_mpc(g, config_for(), opt);
  EXPECT_GT(result.mark_steps, 0u);
  EXPECT_EQ(result.metrics.random_words, 0u);
}

TEST(DetRuling, DeterministicAcrossMachineCountsAndSeeds) {
  const Graph g = gen::power_law(600, 2.5, 8.0, 23);
  DetRulingOptions opt;
  opt.gather_budget_words = 2048;  // force derandomized phases to run
  std::vector<VertexId> first;
  for (mpc::MachineId machines : {2, 4, 8}) {
    for (std::uint64_t seed : {1ull, 99ull}) {
      auto cfg = config_for(1 << 22, machines);
      cfg.seed = seed;  // must not matter: no random bits consumed
      const auto result = det_ruling_set_mpc(g, cfg, opt);
      if (first.empty()) {
        first = result.ruling_set;
        ASSERT_FALSE(first.empty());
      } else {
        EXPECT_EQ(result.ruling_set, first)
            << machines << " machines, seed " << seed;
      }
    }
  }
}

TEST(DetRuling, NoModelViolations) {
  const Graph g = gen::gnp(800, 0.02, 3);
  DetRulingOptions opt;
  opt.gather_budget_words = 4096;  // force derandomized phases to run
  const auto result = det_ruling_set_mpc(g, config_for(), opt);
  EXPECT_EQ(result.metrics.violations, 0u);
  EXPECT_LE(result.metrics.max_storage_words, config_for().memory_words);
  EXPECT_LE(result.metrics.max_send_words, config_for().memory_words);
  EXPECT_LE(result.metrics.max_recv_words, config_for().memory_words);
}

TEST(DetRuling, BetaThreeAndFour) {
  const Graph g = gen::gnp(500, 0.03, 29);
  for (std::uint32_t beta : {3u, 4u}) {
    DetRulingOptions opt;
    opt.beta = beta;
    const auto result = det_ruling_set_mpc(g, config_for(), opt);
    EXPECT_TRUE(is_beta_ruling_set(g, result.ruling_set, beta))
        << "beta=" << beta;
  }
}

TEST(DetRuling, LargerBetaNoMorePhases) {
  // Radius-(beta-1) removal shrinks the graph at least as fast.
  const Graph g = gen::gnp(1500, 0.02, 31);
  DetRulingOptions two;
  two.beta = 2;
  DetRulingOptions four;
  four.beta = 4;
  const auto r2 = det_ruling_set_mpc(g, config_for(), two);
  const auto r4 = det_ruling_set_mpc(g, config_for(), four);
  EXPECT_LE(r4.mark_steps, r2.mark_steps);
  EXPECT_LE(r4.ruling_set.size(), r2.ruling_set.size());
}

TEST(DetRuling, EdgeCases) {
  // Empty graph.
  const auto empty = det_ruling_set_mpc(Graph::from_edges(0, {}), config_for());
  EXPECT_TRUE(empty.ruling_set.empty());
  // Isolated vertices: all belong to the ruling set.
  const auto isolated =
      det_ruling_set_mpc(Graph::from_edges(7, {}), config_for());
  EXPECT_EQ(isolated.ruling_set.size(), 7u);
  // Complete graph: exactly one member.
  const auto kn = det_ruling_set_mpc(gen::complete(30), config_for());
  EXPECT_EQ(kn.ruling_set.size(), 1u);
  // Star: hub or all leaves — either is a valid 2-ruling set.
  const Graph star = gen::star(50);
  const auto st = det_ruling_set_mpc(star, config_for());
  EXPECT_TRUE(is_beta_ruling_set(star, st.ruling_set, 2));
  // Rejects beta < 2.
  DetRulingOptions bad;
  bad.beta = 1;
  EXPECT_THROW(det_ruling_set_mpc(gen::path(5), config_for(), bad),
               std::invalid_argument);
}

TEST(DetRuling, CliqueBlowupPicksOnePerClique) {
  const Graph g = gen::clique_blowup(20, 10);
  const auto result = det_ruling_set_mpc(g, config_for());
  EXPECT_TRUE(is_beta_ruling_set(g, result.ruling_set, 2));
  EXPECT_EQ(result.ruling_set.size(), 20u);
}

TEST(DetRuling, PhasesGrowVerySlowly) {
  // Doubly-logarithmic phase counts: even a 64x growth in n should add at
  // most a few phases.
  auto cfg = config_for(std::size_t{1} << 24);
  DetRulingOptions opt;
  opt.gather_budget_words = 0;  // 32n default scales with n
  const auto small = det_ruling_set_mpc(gen::gnp(250, 16.0 / 250, 7), cfg,
                                        opt);
  const auto large =
      det_ruling_set_mpc(gen::gnp(16000, 16.0 / 16000 * 8, 7), cfg, opt);
  EXPECT_LE(large.phases, small.phases + 4);
}

TEST(DetRuling, TightBudgetStillValid) {
  // Small gather budget forces more phases but never breaks validity.
  const Graph g = gen::gnp(400, 0.05, 41);
  DetRulingOptions opt;
  opt.gather_budget_words = 4096;
  const auto result = det_ruling_set_mpc(g, config_for(), opt);
  EXPECT_TRUE(is_beta_ruling_set(g, result.ruling_set, 2));
}

TEST(DetRuling, ReportsTrajectoryAndCounters) {
  const Graph g = gen::gnp(1000, 0.03, 43);
  DetRulingOptions opt;
  opt.gather_budget_words = 8192;  // force derandomized phases to run
  const auto result = det_ruling_set_mpc(g, config_for(), opt);
  EXPECT_GT(result.metrics.rounds, 0u);
  EXPECT_GE(result.mark_steps, result.phases);
  EXPECT_GT(result.derand_chunks, 0u);
  // Degree trajectory is recorded once per non-final phase and decreasing.
  for (std::size_t i = 1; i < result.degree_trajectory.size(); ++i) {
    EXPECT_LT(result.degree_trajectory[i], result.degree_trajectory[i - 1]);
  }
}

TEST(DetRuling, DisconnectedComponentsAllDominated) {
  // Union of cliques, paths and isolated vertices.
  GraphBuilder b(70);
  for (VertexId u = 0; u < 10; ++u) {
    for (VertexId v = u + 1; v < 10; ++v) b.add_edge(u, v);
  }
  for (VertexId v = 10; v + 1 < 40; ++v) b.add_edge(v, v + 1);
  // 40..69 isolated.
  const Graph g = std::move(b).build();
  const auto result = det_ruling_set_mpc(g, config_for());
  EXPECT_TRUE(is_beta_ruling_set(g, result.ruling_set, 2));
}

}  // namespace
}  // namespace rsets
