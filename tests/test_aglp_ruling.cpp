#include "congest/aglp_ruling.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/verify.hpp"
#include "util/bits.hpp"

namespace rsets::congest {
namespace {

TEST(AglpRuling, ValidWithinRadiusBoundOnSuite) {
  for (const auto& entry : gen::standard_suite(300, 13)) {
    const auto result = aglp_ruling_set_congest(entry.graph);
    EXPECT_TRUE(is_independent_set(entry.graph, result.ruling_set))
        << entry.name;
    EXPECT_LE(domination_radius(entry.graph, result.ruling_set),
              result.beta)
        << entry.name;
  }
}

TEST(AglpRuling, RadiusBoundIsLogN) {
  const Graph g = gen::gnp(1000, 0.01, 3);
  const auto result = aglp_ruling_set_congest(g);
  EXPECT_EQ(result.beta, bit_width_for(1000));
}

TEST(AglpRuling, RoundsEqualIdBits) {
  const Graph g = gen::cycle(256);
  const auto result = aglp_ruling_set_congest(g);
  EXPECT_EQ(result.congest_metrics.rounds,
            static_cast<std::uint64_t>(bit_width_for(256)));
}

TEST(AglpRuling, DeterministicAndRandomFree) {
  const Graph g = gen::power_law(400, 2.5, 8.0, 5);
  const auto a = aglp_ruling_set_congest(g);
  const auto b = aglp_ruling_set_congest(g);
  EXPECT_EQ(a.ruling_set, b.ruling_set);
  EXPECT_EQ(a.congest_metrics.random_words, 0u);
}

TEST(AglpRuling, RealizedRadiusWithinBound) {
  // On a path with consecutive ids the bitwise elimination leaves every
  // second vertex, so the realized radius is tiny; the bound still holds.
  const Graph g = gen::path(4096);
  const auto result = aglp_ruling_set_congest(g);
  const auto radius = domination_radius(g, result.ruling_set);
  EXPECT_LE(radius, result.beta);
  EXPECT_GE(radius, 1u);
}

TEST(AglpRuling, EdgeCases) {
  EXPECT_TRUE(aglp_ruling_set_congest(Graph::from_edges(0, {})).ruling_set.empty());
  const auto single = aglp_ruling_set_congest(Graph::from_edges(1, {}));
  EXPECT_EQ(single.ruling_set.size(), 1u);
  EXPECT_EQ(single.beta, 0u);
  // Complete graph: vertex 0 beats everyone through the bit levels.
  const auto kn = aglp_ruling_set_congest(gen::complete(16));
  EXPECT_EQ(kn.ruling_set, (std::vector<VertexId>{0}));
  // Isolated vertices all survive.
  EXPECT_EQ(aglp_ruling_set_congest(Graph::from_edges(5, {})).ruling_set.size(),
            5u);
}

}  // namespace
}  // namespace rsets::congest
