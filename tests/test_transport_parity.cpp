// Parallel-barrier parity: thread width is a pure wall-clock knob.
//
// The contract of the destination-sharded barrier (DESIGN.md §4.6): for
// every algorithm and fault cocktail, a run at any thread width must produce
// the byte-identical ruling set, metrics ledger, and record log that the
// single-threaded run produces — the canonical merge plan is fixed serially,
// each destination's verify/index/merge work is scheduling-independent, and
// fault draws stay on the coordinator. These tests pin that equivalence; if
// they fail, the parallel barrier has diverged structurally, not just in
// wall clock.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/replay.hpp"
#include "core/ruling_set.hpp"
#include "graph/generators.hpp"
#include "mpc/simulator.hpp"

namespace rsets {
namespace {

RunSpec parity_spec(const std::string& algorithm, const std::string& faults,
                    std::uint32_t threads) {
  RunSpec spec;
  spec.algorithm = algorithm;
  spec.gen = "gnp";
  spec.n = 300;
  spec.avg_deg = 6.0;
  spec.seed = 11;
  spec.machines = 8;
  spec.threads = threads;
  spec.faults = faults;
  return spec;
}

void expect_metrics_equal(const mpc::MpcMetrics& a, const mpc::MpcMetrics& b,
                          const std::string& label) {
  EXPECT_EQ(a.rounds, b.rounds) << label;
  EXPECT_EQ(a.messages, b.messages) << label;
  EXPECT_EQ(a.total_words, b.total_words) << label;
  EXPECT_EQ(a.max_send_words, b.max_send_words) << label;
  EXPECT_EQ(a.max_recv_words, b.max_recv_words) << label;
  EXPECT_EQ(a.max_storage_words, b.max_storage_words) << label;
  EXPECT_EQ(a.violations, b.violations) << label;
  EXPECT_EQ(a.random_words, b.random_words) << label;
  EXPECT_EQ(a.faults_injected, b.faults_injected) << label;
  EXPECT_EQ(a.checkpoints, b.checkpoints) << label;
  EXPECT_EQ(a.recovery_rounds, b.recovery_rounds) << label;
  EXPECT_EQ(a.degraded_subrounds, b.degraded_subrounds) << label;
  EXPECT_EQ(a.deadline_misses, b.deadline_misses) << label;
  EXPECT_EQ(a.speculative_rounds, b.speculative_rounds) << label;
  EXPECT_EQ(a.corrupt_detected, b.corrupt_detected) << label;
  EXPECT_EQ(a.integrity_retries, b.integrity_retries) << label;
  EXPECT_EQ(a.quarantined_rounds, b.quarantined_rounds) << label;
}

std::uint32_t hw_threads() { return 0; }  // 0 = hardware concurrency

// Runs the spec at 1, 4, and hardware-concurrency threads and byte-compares
// each wider run against the single-threaded one: the set, the full metrics
// ledger, and the record-log body (meta line excluded — it names the thread
// count — every phase line and the summary included).
void expect_thread_parity(RunSpec spec, const std::string& label) {
  spec.threads = 1;
  RulingSetResult base_result;
  const std::vector<std::string> base_log = record_run(spec, &base_result);

  for (const std::uint32_t threads : {4u, hw_threads()}) {
    spec.threads = threads;
    RulingSetResult result;
    const std::vector<std::string> log = record_run(spec, &result);
    const std::string at = label + " threads=" + std::to_string(threads);

    EXPECT_EQ(result.ruling_set, base_result.ruling_set) << at;
    expect_metrics_equal(result.metrics, base_result.metrics, at);
    ASSERT_EQ(log.size(), base_log.size()) << at;
    for (std::size_t i = 1; i < log.size(); ++i) {
      EXPECT_EQ(log[i], base_log[i]) << at << " line " << i;
    }
  }
}

TEST(BarrierParity, EveryMpcAlgorithmFaultFree) {
  for (const AlgorithmInfo& info : algorithm_registry()) {
    if (info.model != Model::kMpc) continue;
    RunSpec spec = parity_spec(std::string(info.name), "", 1);
    spec.beta = info.min_beta;
    expect_thread_parity(spec, std::string(info.name));
  }
}

TEST(BarrierParity, IntegrityVerificationOnEveryThreadWidth) {
  // With --integrity the parallel delivery pass checksums every buffer; the
  // verification must stay free and thread-invariant.
  for (const AlgorithmInfo& info : algorithm_registry()) {
    if (info.model != Model::kMpc) continue;
    RunSpec spec = parity_spec(std::string(info.name), "", 1);
    spec.beta = info.min_beta;
    spec.integrity = true;
    expect_thread_parity(spec, std::string(info.name) + " integrity");
  }
}

struct ParityFaultCase {
  const char* name;
  const char* faults;
  std::uint64_t checkpoint_every = 0;
  const char* budget_policy = "strict";
  std::uint64_t deadline = 0;
};

class BarrierParityFaults
    : public ::testing::TestWithParam<ParityFaultCase> {};

INSTANTIATE_TEST_SUITE_P(
    Kinds, BarrierParityFaults,
    ::testing::Values(
        ParityFaultCase{"crash", "crash~0.02,seed=3", 2},
        ParityFaultCase{"straggler", "straggler~0.1,seed=3"},
        ParityFaultCase{"drop", "drop~0.05,seed=3"},
        ParityFaultCase{"duplicate", "dup~0.05,seed=3"},
        ParityFaultCase{"corrupt", "corrupt~0.1,seed=3"},
        ParityFaultCase{"reorder", "reorder~0.5,seed=3"},
        ParityFaultCase{"quarantine", "corrupt~1.0,seed=3"},
        ParityFaultCase{"degrade", "drop~0.02,seed=3", 0, "degrade"},
        ParityFaultCase{"deadline", "straggler~0.1,seed=3", 0, "strict", 4},
        ParityFaultCase{"everything",
                        "crash~0.01,straggler~0.02,drop~0.01,dup~0.01,"
                        "corrupt~0.05,reorder~0.25,seed=3",
                        2}),
    [](const auto& info) { return std::string(info.param.name); });

TEST_P(BarrierParityFaults, ByteIdenticalAcrossThreadCounts) {
  RunSpec spec = parity_spec("det_ruling_mpc", GetParam().faults, 1);
  spec.checkpoint_every = GetParam().checkpoint_every;
  spec.budget_policy = GetParam().budget_policy;
  spec.deadline = GetParam().deadline;
  expect_thread_parity(spec, GetParam().name);
}

TEST(BarrierParity, ThreadedRecordReplaysSingleThreaded) {
  // A log recorded under the parallel barrier must replay bit-identically —
  // and because phase lines never encode the thread width, the replay can
  // even run at a different width than the recording (the meta line's
  // `threads` is an execution knob, not a semantic one; replay honors it,
  // so here we just pin a faulty threaded recording round-tripping).
  RunSpec spec =
      parity_spec("det_ruling_mpc", "corrupt~0.05,reorder~0.25,seed=4", 4);
  const std::vector<std::string> log = record_run(spec);
  const ReplayReport report = replay_log(log);
  EXPECT_TRUE(report.ok()) << report.first_mismatch;
  EXPECT_EQ(report.spec.threads, 4u);
}

TEST(BarrierParity, SenderStreamsMultipleRecordsPerDestination) {
  mpc::MpcConfig cfg;
  cfg.num_machines = 2;
  cfg.memory_words = 1 << 16;
  mpc::Simulator sim(cfg);
  sim.round([](mpc::Machine& m, const mpc::Inbox&) {
    if (m.id() != 0) return;
    m.sender(1, 3).push(10).push(11);
    const std::vector<mpc::Word> tail = {12, 13, 14};
    m.sender(1, 3).append(tail).push(15);
  });
  sim.drain([](mpc::Machine& m, const mpc::Inbox& inbox) {
    if (m.id() != 1) return;
    const auto msgs = inbox.with_tag(3);
    ASSERT_EQ(msgs.size(), 2u);
    // Send order preserved within (tag, src).
    EXPECT_EQ(msgs[0].payload.size(), 2u);
    EXPECT_EQ(msgs[0].payload[1], 11u);
    EXPECT_EQ(msgs[1].payload.size(), 4u);
    EXPECT_EQ(msgs[1].payload[3], 15u);
  });
  EXPECT_EQ(sim.metrics().messages, 2u);
  EXPECT_EQ(sim.metrics().total_words, 6 + 2 * mpc::kHeaderWords);
}

}  // namespace
}  // namespace rsets
