// Aggregated vs. legacy transport parity.
//
// The contract of the transport redesign: TransportMode is a pure cost-model
// knob. For every algorithm, thread count, and fault kind, the aggregated
// path must produce the byte-identical ruling set, metrics ledger, and
// record log that the legacy per-message path produces — the legacy outbox
// is converted to the same canonical AggBuffer sequence at merge, so every
// downstream decision (delivery order, fault draws, checksums, degrade
// waves) is shared. These tests pin that equivalence; if they fail, the
// modes have diverged structurally, not just in wall clock.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/replay.hpp"
#include "core/ruling_set.hpp"
#include "graph/generators.hpp"
#include "mpc/simulator.hpp"

namespace rsets {
namespace {

RunSpec parity_spec(const std::string& algorithm, const std::string& faults,
                    std::uint32_t threads) {
  RunSpec spec;
  spec.algorithm = algorithm;
  spec.gen = "gnp";
  spec.n = 300;
  spec.avg_deg = 6.0;
  spec.seed = 11;
  spec.machines = 8;
  spec.threads = threads;
  spec.faults = faults;
  return spec;
}

void expect_metrics_equal(const mpc::MpcMetrics& a, const mpc::MpcMetrics& b,
                          const std::string& label) {
  EXPECT_EQ(a.rounds, b.rounds) << label;
  EXPECT_EQ(a.messages, b.messages) << label;
  EXPECT_EQ(a.total_words, b.total_words) << label;
  EXPECT_EQ(a.max_send_words, b.max_send_words) << label;
  EXPECT_EQ(a.max_recv_words, b.max_recv_words) << label;
  EXPECT_EQ(a.max_storage_words, b.max_storage_words) << label;
  EXPECT_EQ(a.violations, b.violations) << label;
  EXPECT_EQ(a.random_words, b.random_words) << label;
  EXPECT_EQ(a.faults_injected, b.faults_injected) << label;
  EXPECT_EQ(a.checkpoints, b.checkpoints) << label;
  EXPECT_EQ(a.recovery_rounds, b.recovery_rounds) << label;
  EXPECT_EQ(a.degraded_subrounds, b.degraded_subrounds) << label;
  EXPECT_EQ(a.deadline_misses, b.deadline_misses) << label;
  EXPECT_EQ(a.speculative_rounds, b.speculative_rounds) << label;
  EXPECT_EQ(a.corrupt_detected, b.corrupt_detected) << label;
  EXPECT_EQ(a.integrity_retries, b.integrity_retries) << label;
  EXPECT_EQ(a.quarantined_rounds, b.quarantined_rounds) << label;
}

// Runs the spec through both transports and byte-compares the record log
// (meta line excluded — it names the transport — every phase line and the
// summary included) plus the set and the full metrics ledger.
void expect_transport_parity(RunSpec spec, const std::string& label) {
  spec.transport = "aggregated";
  RulingSetResult agg_result;
  const std::vector<std::string> agg_log = record_run(spec, &agg_result);

  spec.transport = "legacy";
  RulingSetResult legacy_result;
  const std::vector<std::string> legacy_log = record_run(spec, &legacy_result);

  EXPECT_EQ(agg_result.ruling_set, legacy_result.ruling_set) << label;
  expect_metrics_equal(agg_result.metrics, legacy_result.metrics, label);
  ASSERT_EQ(agg_log.size(), legacy_log.size()) << label;
  for (std::size_t i = 1; i < agg_log.size(); ++i) {
    EXPECT_EQ(agg_log[i], legacy_log[i]) << label << " line " << i;
  }
}

std::uint32_t hw_threads() { return 0; }  // 0 = hardware concurrency

TEST(TransportParity, EveryMpcAlgorithmFaultFree) {
  for (const AlgorithmInfo& info : algorithm_registry()) {
    if (info.model != Model::kMpc) continue;
    for (const std::uint32_t threads : {1u, 4u, hw_threads()}) {
      RunSpec spec = parity_spec(std::string(info.name), "", threads);
      spec.beta = info.min_beta;
      expect_transport_parity(spec, std::string(info.name) + " threads=" +
                                        std::to_string(threads));
    }
  }
}

struct ParityFaultCase {
  const char* name;
  const char* faults;
  std::uint64_t checkpoint_every = 0;
  const char* budget_policy = "strict";
  std::uint64_t deadline = 0;
};

class TransportParityFaults
    : public ::testing::TestWithParam<ParityFaultCase> {};

INSTANTIATE_TEST_SUITE_P(
    Kinds, TransportParityFaults,
    ::testing::Values(
        ParityFaultCase{"crash", "crash~0.02,seed=3", 2},
        ParityFaultCase{"straggler", "straggler~0.1,seed=3"},
        ParityFaultCase{"drop", "drop~0.05,seed=3"},
        ParityFaultCase{"duplicate", "dup~0.05,seed=3"},
        ParityFaultCase{"corrupt", "corrupt~0.1,seed=3"},
        ParityFaultCase{"reorder", "reorder~0.5,seed=3"},
        ParityFaultCase{"quarantine", "corrupt~1.0,seed=3"},
        ParityFaultCase{"degrade", "drop~0.02,seed=3", 0, "degrade"},
        ParityFaultCase{"deadline", "straggler~0.1,seed=3", 0, "strict", 4},
        ParityFaultCase{"everything",
                        "crash~0.01,straggler~0.02,drop~0.01,dup~0.01,"
                        "corrupt~0.05,reorder~0.25,seed=3",
                        2}),
    [](const auto& info) { return std::string(info.param.name); });

TEST_P(TransportParityFaults, ByteIdenticalAcrossThreadCounts) {
  for (const std::uint32_t threads : {1u, 4u, hw_threads()}) {
    RunSpec spec =
        parity_spec("det_ruling_mpc", GetParam().faults, threads);
    spec.checkpoint_every = GetParam().checkpoint_every;
    spec.budget_policy = GetParam().budget_policy;
    spec.deadline = GetParam().deadline;
    expect_transport_parity(spec, std::string(GetParam().name) +
                                      " threads=" + std::to_string(threads));
  }
}

TEST(TransportParity, LegacyRecordReplaysOnLegacyTransport) {
  // A log recorded on the legacy path must replay on the legacy path (the
  // meta line carries the transport), byte for byte, faults and all.
  RunSpec spec =
      parity_spec("det_ruling_mpc", "corrupt~0.05,reorder~0.25,seed=4", 1);
  spec.transport = "legacy";
  const std::vector<std::string> log = record_run(spec);
  const ReplayReport report = replay_log(log);
  EXPECT_TRUE(report.ok()) << report.first_mismatch;
  EXPECT_EQ(report.spec.transport, "legacy");
}

// The one-release deprecation shims must stay behaviorally identical to the
// batch API they forward to.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(TransportParity, DeprecatedShimsStillDeliver) {
  mpc::MpcConfig cfg;
  cfg.num_machines = 2;
  cfg.memory_words = 1 << 16;
  mpc::Simulator sim(cfg);
  sim.round([](mpc::Machine& m, const mpc::Inbox&) {
    if (m.id() != 0) return;
    m.send(1, 7, std::vector<mpc::Word>{1, 2, 3});  // rvalue → deprecated
    m.send_word(1, 9, 42);
  });
  bool checked = false;
  sim.drain([&](mpc::Machine& m, const mpc::Inbox& inbox) {
    if (m.id() != 1) return;
    const auto vecs = inbox.with_tag(7);
    ASSERT_EQ(vecs.size(), 1u);
    EXPECT_EQ(vecs[0].payload.size(), 3u);
    EXPECT_EQ(vecs[0].payload[2], 3u);
    const auto words = inbox.with_tag(9);
    ASSERT_EQ(words.size(), 1u);
    EXPECT_EQ(words[0].payload[0], 42u);
    checked = true;
  });
  EXPECT_TRUE(checked);
  // Shim charges match the batch API: 2 messages, 3 + 1 payload words, a
  // 2-word header each.
  EXPECT_EQ(sim.metrics().total_words, 4 + 2 * mpc::kHeaderWords);
  EXPECT_EQ(sim.metrics().messages, 2u);
}
#pragma GCC diagnostic pop

TEST(TransportParity, SenderStreamsMultipleRecordsPerDestination) {
  mpc::MpcConfig cfg;
  cfg.num_machines = 2;
  cfg.memory_words = 1 << 16;
  mpc::Simulator sim(cfg);
  sim.round([](mpc::Machine& m, const mpc::Inbox&) {
    if (m.id() != 0) return;
    m.sender(1, 3).push(10).push(11);
    const std::vector<mpc::Word> tail = {12, 13, 14};
    m.sender(1, 3).append(tail).push(15);
  });
  sim.drain([](mpc::Machine& m, const mpc::Inbox& inbox) {
    if (m.id() != 1) return;
    const auto msgs = inbox.with_tag(3);
    ASSERT_EQ(msgs.size(), 2u);
    // Send order preserved within (tag, src).
    EXPECT_EQ(msgs[0].payload.size(), 2u);
    EXPECT_EQ(msgs[0].payload[1], 11u);
    EXPECT_EQ(msgs[1].payload.size(), 4u);
    EXPECT_EQ(msgs[1].payload[3], 15u);
  });
  EXPECT_EQ(sim.metrics().messages, 2u);
  EXPECT_EQ(sim.metrics().total_words, 6 + 2 * mpc::kHeaderWords);
}

TEST(TransportParity, TransportModeNamesRoundTrip) {
  using mpc::TransportMode;
  for (const TransportMode t :
       {TransportMode::kAggregated, TransportMode::kLegacy}) {
    EXPECT_EQ(mpc::parse_transport_mode(mpc::transport_mode_name(t)), t);
  }
  EXPECT_THROW(mpc::parse_transport_mode("carrier"), Error);
  try {
    mpc::parse_transport_mode("carrier");
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadFlag);
  }
}

}  // namespace
}  // namespace rsets
