#include "congest/det_ruling_congest.hpp"

#include <gtest/gtest.h>

#include "congest/coloring_mis.hpp"
#include "graph/generators.hpp"
#include "graph/verify.hpp"

namespace rsets::congest {
namespace {

TEST(DetRulingCongest, ValidOnBoundedDegreeFamilies) {
  for (const Graph& g :
       {gen::cycle(300), gen::grid(16, 16), gen::torus(12, 12),
        gen::random_regular(300, 6, 4), gen::caterpillar(40, 4)}) {
    const auto result = det_2ruling_set_congest(g);
    EXPECT_TRUE(is_beta_ruling_set(g, result.ruling_set, 2));
  }
}

TEST(DetRulingCongest, DeterministicAndRandomFree) {
  const Graph g = gen::grid(20, 20);
  const auto a = det_2ruling_set_congest(g);
  const auto b = det_2ruling_set_congest(g);
  EXPECT_EQ(a.ruling_set, b.ruling_set);
  EXPECT_EQ(a.congest_metrics.random_words, 0u);
}

TEST(DetRulingCongest, SparserThanColoringMis) {
  // A 2-ruling set may skip vertices an MIS must take.
  const Graph g = gen::cycle(400);
  const auto rs = det_2ruling_set_congest(g);
  const auto mis = coloring_mis_congest(g);
  EXPECT_LT(rs.ruling_set.size(), mis.ruling_set.size());
}

TEST(DetRulingCongest, RoundsBoundedByPalette) {
  const Graph g = gen::grid(25, 25);
  const auto result = det_2ruling_set_congest(g);
  // Coloring rounds (2/step) + at most 2 rounds per color turn.
  EXPECT_LE(result.congest_metrics.rounds,
            2ull * result.palette_size + 20ull);
}

TEST(DetRulingCongest, EdgeCases) {
  EXPECT_TRUE(det_2ruling_set_congest(Graph::from_edges(0, {})).ruling_set.empty());
  EXPECT_EQ(det_2ruling_set_congest(Graph::from_edges(3, {})).ruling_set.size(),
            3u);
  EXPECT_EQ(det_2ruling_set_congest(gen::complete(10)).ruling_set.size(), 1u);
  const Graph p = gen::path(2);
  EXPECT_EQ(det_2ruling_set_congest(p).ruling_set.size(), 1u);
}

TEST(LinialColoring, StandaloneProducesProperColoring) {
  const Graph g = gen::torus(15, 15);
  CongestSim sim(g, {});
  const auto coloring = linial_coloring(sim);
  for (const Edge& e : g.edges()) {
    EXPECT_NE(coloring.colors[e.u], coloring.colors[e.v]);
  }
  for (std::uint32_t c : coloring.colors) {
    EXPECT_LT(c, coloring.palette_size);
  }
  EXPECT_GE(coloring.steps, 1u);
}

}  // namespace
}  // namespace rsets::congest
