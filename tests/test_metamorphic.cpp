// Metamorphic and failure-injection tests: relationships that must hold
// between runs on transformed inputs, and behavior at the model's edges.
#include <gtest/gtest.h>

#include "core/det_ruling.hpp"
#include "core/greedy.hpp"
#include "graph/generators.hpp"
#include "graph/verify.hpp"
#include "mpc/dist_graph.hpp"

namespace rsets {
namespace {

mpc::MpcConfig config_for(std::size_t memory = 1 << 22) {
  mpc::MpcConfig cfg;
  cfg.num_machines = 4;
  cfg.memory_words = memory;
  cfg.seed = 1;
  return cfg;
}

// Disjoint-union metamorphism: the ruling set of G1 ⊎ G2 restricted to each
// part must be a valid ruling set of that part.
TEST(Metamorphic, DisjointUnionRestrictsToValidSets) {
  const Graph g1 = gen::gnp(200, 0.04, 3);
  const Graph g2 = gen::grid(14, 14);
  const VertexId off = g1.num_vertices();
  GraphBuilder builder(off + g2.num_vertices());
  for (const Edge& e : g1.edges()) builder.add_edge(e.u, e.v);
  for (const Edge& e : g2.edges()) builder.add_edge(off + e.u, off + e.v);
  const Graph g = std::move(builder).build();

  const auto result = det_ruling_set_mpc(g, config_for());
  std::vector<VertexId> part1;
  std::vector<VertexId> part2;
  for (VertexId v : result.ruling_set) {
    if (v < off) {
      part1.push_back(v);
    } else {
      part2.push_back(v - off);
    }
  }
  EXPECT_TRUE(is_beta_ruling_set(g1, part1, 2));
  EXPECT_TRUE(is_beta_ruling_set(g2, part2, 2));
}

// Adding isolated vertices must add exactly those vertices to the set and
// change nothing else (they are forced members of any ruling set).
TEST(Metamorphic, IsolatedVerticesAreForcedMembers) {
  const Graph g = gen::gnp(300, 0.03, 5);
  GraphBuilder builder(g.num_vertices() + 10);
  for (const Edge& e : g.edges()) builder.add_edge(e.u, e.v);
  const Graph extended = std::move(builder).build();

  const auto result = det_ruling_set_mpc(extended, config_for());
  for (VertexId v = g.num_vertices(); v < extended.num_vertices(); ++v) {
    EXPECT_TRUE(std::binary_search(result.ruling_set.begin(),
                                   result.ruling_set.end(), v))
        << "isolated vertex " << v << " missing";
  }
}

// Subgraph monotonicity of greedy MIS size on vertex-deleted graphs is NOT
// guaranteed in general — but validity must survive any induced subgraph's
// recomputation. (Guards against hidden global state between runs.)
TEST(Metamorphic, RepeatedRunsAreIndependent) {
  const Graph g = gen::power_law(400, 2.5, 8.0, 7);
  const auto a = det_ruling_set_mpc(g, config_for());
  const auto b = det_ruling_set_mpc(g, config_for());
  const auto c = det_ruling_set_mpc(g, config_for());
  EXPECT_EQ(a.ruling_set, b.ruling_set);
  EXPECT_EQ(b.ruling_set, c.ruling_set);
}

// Failure injection: with enforcement disabled, an undersized configuration
// must complete and *count* violations instead of throwing.
TEST(FailureInjection, ViolationsCountedWhenEnforcementOff) {
  const Graph g = gen::gnp(500, 0.05, 9);
  mpc::MpcConfig cfg;
  cfg.num_machines = 4;
  cfg.memory_words = 2048;  // far too small for n=500, m~6000
  cfg.budget_policy = mpc::BudgetPolicy::kTrace;
  mpc::Simulator sim(cfg);
  mpc::DistGraph dg(sim, g);
  sim.sync_metrics();
  EXPECT_GT(sim.metrics().violations, 0u);
  EXPECT_GT(sim.metrics().max_storage_words, cfg.memory_words);
}

// Failure injection: with enforcement on, the same configuration throws at
// load time (not deep inside a phase).
TEST(FailureInjection, UndersizedEnforcedConfigThrowsEarly) {
  const Graph g = gen::gnp(500, 0.05, 9);
  mpc::MpcConfig cfg;
  cfg.num_machines = 4;
  cfg.memory_words = 2048;
  EXPECT_THROW(
      {
        mpc::Simulator sim(cfg);
        mpc::DistGraph dg(sim, g);
      },
      mpc::MpcViolation);
}

// The deterministic algorithm must not depend on the partition salt's
// *machine assignment* of vertices (ownership is an implementation detail).
TEST(Metamorphic, OutputIndependentOfMachineCount) {
  const Graph g = gen::random_regular(300, 10, 11);
  DetRulingOptions opt;
  opt.gather_budget_words = 2048;
  std::vector<VertexId> first;
  for (mpc::MachineId machines : {1, 3, 5, 16}) {
    mpc::MpcConfig cfg = config_for();
    cfg.num_machines = machines;
    const auto result = det_ruling_set_mpc(g, cfg, opt);
    if (first.empty()) {
      first = result.ruling_set;
    } else {
      EXPECT_EQ(result.ruling_set, first) << machines << " machines";
    }
  }
}

// Greedy oracle cross-check: on graphs where the optimum is known, both the
// oracle and the MPC algorithm must land on it.
TEST(Metamorphic, KnownOptimaCrossCheck) {
  // Cycle C_9, beta=2: minimum 2-ruling set size is ceil(9/5) = 2; any
  // valid algorithm returns >= 2 and <= MIS size (4 by greedy).
  const Graph c9 = gen::cycle(9);
  const auto det = det_ruling_set_mpc(c9, config_for());
  EXPECT_GE(det.ruling_set.size(), 2u);
  EXPECT_LE(det.ruling_set.size(), 4u);
  // Hypercube Q_4: MIS of size 8 exists (even-parity vertices).
  const Graph q4 = gen::hypercube(4);
  const auto mis = greedy_mis(q4);
  EXPECT_EQ(mis.size(), 8u);
}

}  // namespace
}  // namespace rsets
