#include "graph/ops.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "graph/generators.hpp"

namespace rsets {
namespace {

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  // Square 0-1-2-3 with diagonal 0-2.
  const Graph g =
      Graph::from_edges(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  const std::vector<VertexId> sub = {0, 1, 2};
  const auto induced = induced_subgraph(g, sub);
  EXPECT_EQ(induced.graph.num_vertices(), 3u);
  EXPECT_EQ(induced.graph.num_edges(), 3u);  // 0-1, 1-2, 0-2
  EXPECT_EQ(induced.to_original.size(), 3u);
}

TEST(InducedSubgraph, DeduplicatesInput) {
  const Graph g = gen::cycle(6);
  const std::vector<VertexId> sub = {2, 2, 3, 3};
  const auto induced = induced_subgraph(g, sub);
  EXPECT_EQ(induced.graph.num_vertices(), 2u);
  EXPECT_EQ(induced.graph.num_edges(), 1u);
}

TEST(InducedSubgraph, RelabelMapsBack) {
  const Graph g = gen::path(10);
  const std::vector<VertexId> sub = {7, 3, 8};
  const auto induced = induced_subgraph(g, sub);
  // Sorted: 3, 7, 8. Edge 7-8 survives as 1-2.
  EXPECT_EQ(induced.to_original[0], 3u);
  EXPECT_EQ(induced.to_original[1], 7u);
  EXPECT_EQ(induced.to_original[2], 8u);
  EXPECT_TRUE(induced.graph.has_edge(1, 2));
  EXPECT_FALSE(induced.graph.has_edge(0, 1));
}

TEST(PowerGraph, PathSquared) {
  const Graph g = gen::path(5);
  const Graph g2 = power_graph(g, 2);
  // Path 0-1-2-3-4 squared: extra edges 0-2, 1-3, 2-4.
  EXPECT_EQ(g2.num_edges(), 7u);
  EXPECT_TRUE(g2.has_edge(0, 2));
  EXPECT_FALSE(g2.has_edge(0, 3));
}

TEST(PowerGraph, K1IsIdentity) {
  const Graph g = gen::gnp(100, 0.05, 1);
  const Graph g1 = power_graph(g, 1);
  EXPECT_EQ(g1.num_edges(), g.num_edges());
}

TEST(PowerGraph, LargeKGivesCliquePerComponent) {
  const Graph g = gen::path(6);
  const Graph gk = power_graph(g, 10);
  EXPECT_EQ(gk.num_edges(), 15u);
}

TEST(BfsDistances, SingleSource) {
  const Graph g = gen::path(5);
  const std::vector<VertexId> src = {0};
  const auto dist = bfs_distances(g, src);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(BfsDistances, MultiSourceTakesMin) {
  const Graph g = gen::path(7);
  const std::vector<VertexId> src = {0, 6};
  const auto dist = bfs_distances(g, src);
  EXPECT_EQ(dist[3], 3u);
  EXPECT_EQ(dist[5], 1u);
}

TEST(BfsDistances, UnreachableIsMax) {
  const Graph g = Graph::from_edges(4, std::vector<Edge>{{0, 1}});
  const std::vector<VertexId> src = {0};
  const auto dist = bfs_distances(g, src);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], std::numeric_limits<std::uint32_t>::max());
}

TEST(ConnectedComponents, CountsAndLabels) {
  const Graph g =
      Graph::from_edges(6, std::vector<Edge>{{0, 1}, {1, 2}, {3, 4}});
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[5], comp[0]);
  EXPECT_NE(comp[5], comp[3]);
}

TEST(DegreeStats, Basics) {
  const Graph g = gen::star(5);
  const auto stats = degree_stats(g);
  EXPECT_EQ(stats.min, 1u);
  EXPECT_EQ(stats.max, 4u);
  EXPECT_DOUBLE_EQ(stats.mean, 8.0 / 5.0);
  EXPECT_EQ(stats.isolated, 0u);
}

TEST(DegreeStats, CountsIsolated) {
  const Graph g = Graph::from_edges(5, std::vector<Edge>{{0, 1}});
  EXPECT_EQ(degree_stats(g).isolated, 3u);
}

TEST(ApproxDiameter, KnownValues) {
  EXPECT_EQ(approx_diameter(gen::path(10)), 9u);
  EXPECT_EQ(approx_diameter(gen::cycle(10)), 5u);
  EXPECT_EQ(approx_diameter(gen::complete(8)), 1u);
  EXPECT_EQ(approx_diameter(gen::star(20)), 2u);
  EXPECT_EQ(approx_diameter(Graph::from_edges(3, {})), 0u);
  EXPECT_EQ(approx_diameter(Graph::from_edges(0, {})), 0u);
}

TEST(ApproxDiameter, ExactOnTrees) {
  // Double sweep is exact on trees; cross-check against all-pairs BFS.
  const Graph g = gen::random_tree(60, 9);
  std::uint32_t truth = 0;
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    const std::vector<VertexId> src = {s};
    for (std::uint32_t d : bfs_distances(g, src)) {
      if (d != std::numeric_limits<std::uint32_t>::max()) {
        truth = std::max(truth, d);
      }
    }
  }
  EXPECT_EQ(approx_diameter(g), truth);
}

TEST(ApproxDiameter, UsesLargestComponent) {
  // Small clique + long path in separate components.
  GraphBuilder b(25);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  for (VertexId v = 3; v + 1 < 25; ++v) b.add_edge(v, v + 1);
  const Graph g = std::move(b).build();
  EXPECT_EQ(approx_diameter(g), 21u);
}

TEST(Degeneracy, KnownValues) {
  EXPECT_EQ(degeneracy(gen::path(10)), 1u);
  EXPECT_EQ(degeneracy(gen::cycle(10)), 2u);
  EXPECT_EQ(degeneracy(gen::complete(6)), 5u);
  EXPECT_EQ(degeneracy(gen::star(100)), 1u);
  EXPECT_EQ(degeneracy(gen::random_tree(500, 3)), 1u);
  EXPECT_EQ(degeneracy(gen::grid(10, 10)), 2u);
}

TEST(Degeneracy, EmptyAndSingleton) {
  EXPECT_EQ(degeneracy(Graph::from_edges(0, {})), 0u);
  EXPECT_EQ(degeneracy(Graph::from_edges(1, {})), 0u);
}

}  // namespace
}  // namespace rsets
