#include "mpc/dist_graph.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace rsets::mpc {
namespace {

MpcConfig config_for(std::size_t memory, MachineId machines = 4) {
  MpcConfig cfg;
  cfg.num_machines = machines;
  cfg.memory_words = memory;
  cfg.seed = 3;
  return cfg;
}

TEST(DistGraph, PartitionCoversAllVertices) {
  Simulator sim(config_for(1 << 16));
  const Graph g = gen::gnp(300, 0.02, 1);
  DistGraph dg(sim, g);
  std::vector<bool> seen(g.num_vertices(), false);
  for (MachineId m = 0; m < sim.num_machines(); ++m) {
    for (VertexId v : dg.owned(m)) {
      EXPECT_EQ(dg.owner(v), m);
      EXPECT_FALSE(seen[v]);
      seen[v] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(DistGraph, PartitionIsBalanced) {
  Simulator sim(config_for(1 << 18, 8));
  const Graph g = gen::cycle(8000);
  DistGraph dg(sim, g);
  for (MachineId m = 0; m < 8; ++m) {
    EXPECT_NEAR(static_cast<double>(dg.owned(m).size()), 1000.0, 200.0);
  }
}

TEST(DistGraph, LoadingChargesStorageAndARound) {
  Simulator sim(config_for(1 << 16));
  const Graph g = gen::gnp(200, 0.05, 2);
  DistGraph dg(sim, g);
  EXPECT_EQ(sim.metrics().rounds, 1u);
  EXPECT_GT(sim.metrics().max_storage_words, 0u);
}

TEST(DistGraph, UndersizedMemoryFails) {
  Simulator sim(config_for(/*memory=*/64));
  const Graph g = gen::gnp(500, 0.1, 2);
  EXPECT_THROW(DistGraph(sim, g), MpcViolation);
}

TEST(DistGraph, ActiveDegreeTracksDeactivation) {
  Simulator sim(config_for(1 << 16));
  const Graph g = gen::star(10);  // hub 0 with 9 leaves
  DistGraph dg(sim, g);
  EXPECT_EQ(dg.active_degree(0), 9u);
  EXPECT_EQ(dg.active_max_degree(sim), 9u);

  // Deactivate four leaves (announced by their owners).
  std::vector<std::vector<VertexId>> removals(sim.num_machines());
  for (VertexId v : {1, 2, 3, 4}) {
    removals[dg.owner(v)].push_back(v);
  }
  dg.deactivate(sim, removals);
  EXPECT_EQ(dg.active_count(), 6u);
  EXPECT_EQ(dg.active_degree(0), 5u);
  EXPECT_FALSE(dg.active(1));
  EXPECT_TRUE(dg.active(0));
}

TEST(DistGraph, DeactivateValidatesOwnership) {
  Simulator sim(config_for(1 << 16));
  const Graph g = gen::path(10);
  DistGraph dg(sim, g);
  std::vector<std::vector<VertexId>> removals(sim.num_machines());
  const VertexId v = 3;
  const MachineId wrong = (dg.owner(v) + 1) % sim.num_machines();
  removals[wrong].push_back(v);
  EXPECT_THROW(dg.deactivate(sim, removals), std::logic_error);
}

TEST(DistGraph, DeactivationCostsOneRound) {
  Simulator sim(config_for(1 << 16));
  const Graph g = gen::path(20);
  DistGraph dg(sim, g);
  const auto before = sim.metrics().rounds;
  std::vector<std::vector<VertexId>> removals(sim.num_machines());
  removals[dg.owner(5)].push_back(5);
  dg.deactivate(sim, removals);
  EXPECT_EQ(sim.metrics().rounds, before + 1);
}

TEST(DistGraph, ActiveVerticesListMatchesBitset) {
  Simulator sim(config_for(1 << 16));
  const Graph g = gen::cycle(30);
  DistGraph dg(sim, g);
  std::vector<std::vector<VertexId>> removals(sim.num_machines());
  for (VertexId v = 0; v < 30; v += 3) removals[dg.owner(v)].push_back(v);
  dg.deactivate(sim, removals);
  const auto active = dg.active_vertices();
  EXPECT_EQ(active.size(), 20u);
  for (VertexId v : active) EXPECT_NE(v % 3, 0u);
}

TEST(DistGraph, ActiveMaxDegreeOnEmptyActiveSet) {
  Simulator sim(config_for(1 << 16));
  const Graph g = gen::path(5);
  DistGraph dg(sim, g);
  std::vector<std::vector<VertexId>> removals(sim.num_machines());
  for (VertexId v = 0; v < 5; ++v) removals[dg.owner(v)].push_back(v);
  dg.deactivate(sim, removals);
  EXPECT_EQ(dg.active_count(), 0u);
  EXPECT_EQ(dg.active_max_degree(sim), 0u);
}

}  // namespace
}  // namespace rsets::mpc
